// Crash-safety suite for the `otsched serve` daemon (docs/SERVING.md,
// "Durability & recovery" / "Overload behavior"):
//
//   * the write-ahead journal round-trips and tolerates a torn tail but
//     rejects interior corruption (the SweepCheckpoint contract);
//   * a daemon SIGKILLed mid-stream (halt(), the in-process stand-in)
//     and recovered with --recover answers the SAME reply bytes as an
//     uninterrupted run — parked replies and orphan adoption included;
//   * rotation truncates the journal at quiescent points without
//     breaking dense wire ids, and stateful policies refuse it;
//   * the shedding bounds (pending-jobs watermark, connection ceiling,
//     idle deadline) fail explicitly instead of growing memory.
#include "gtest_compat.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sched/registry.h"
#include "serve/journal.h"
#include "serve/server.h"

namespace otsched {
namespace {

/// Blocking TCP client for a "127.0.0.1:port" address.
class TestClient {
 public:
  explicit TestClient(const std::string& address) {
    const std::size_t colon = address.rfind(':');
    const std::string host = address.substr(0, colon);
    const int port = std::atoi(address.c_str() + colon + 1);
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void send_all(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off, 0);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  /// Reads until `lines` newline-terminated lines have accumulated.
  std::vector<std::string> read_lines(std::size_t lines) {
    while (count_lines() < lines) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    std::vector<std::string> out;
    std::size_t start = 0;
    while (out.size() < lines) {
      const std::size_t end = buffer_.find('\n', start);
      if (end == std::string::npos) break;
      out.push_back(buffer_.substr(start, end - start));
      start = end + 1;
    }
    buffer_.erase(0, start);
    return out;
  }

  /// Reads until the peer closes.
  std::string read_to_eof() {
    std::string out;
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      out.append(chunk, static_cast<std::size_t>(n));
    }
    return out;
  }

 private:
  std::size_t count_lines() const {
    std::size_t count = 0;
    for (const char c : buffer_) {
      if (c == '\n') ++count;
    }
    return count;
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

class RunningServer {
 public:
  explicit RunningServer(serve::ServeOptions options) {
    server_.emplace(options, MakePolicy(options.policy, options.seed));
    error_.clear();
    started_ = server_->start(&error_);
    if (started_) {
      thread_ = std::thread([this] { server_->run(); });
    }
  }
  ~RunningServer() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      server_->request_stop();
      thread_.join();
    }
  }

  /// The in-process SIGKILL: the loop returns without draining,
  /// flushing, or committing anything further.
  void crash() {
    if (thread_.joinable()) {
      server_->halt();
      thread_.join();
    }
  }

  serve::ScheduleServer& server() { return *server_; }
  bool started() const { return started_; }
  const std::string& error() const { return error_; }

 private:
  std::optional<serve::ScheduleServer> server_;
  std::thread thread_;
  bool started_ = false;
  std::string error_;
};

std::string TempPath(const std::string& stem) {
  const char* dir = ::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + stem + "-" +
         std::to_string(::getpid()) + ".ndjson";
}


std::int64_t CounterValue(const MetricsRegistry& registry,
                          const std::string& name) {
  const auto& counters = registry.counters();
  const auto it = counters.find(name);
  return it == counters.end() ? -1 : it->second.value();
}

/// Spaced-release chain jobs: job k is a 3-node chain released at 8k,
/// finishing (span 3 on m >= 1) long before job k+1 arrives, so finish
/// order equals submission order and reply streams diff cleanly.
std::string SpacedJobLine(int k) {
  return "{\"id\": \"tag-" + std::to_string(k) + "\", \"release\": " +
         std::to_string(8 * k) + ", \"parents\": [-1, 0, 1]}\n";
}

std::string TagOf(const std::string& reply) {
  const std::size_t key = reply.find("\"id\": \"");
  if (key == std::string::npos) return "";
  const std::size_t begin = key + 7;
  return reply.substr(begin, reply.find('"', begin) - begin);
}

// ---- journal unit surface ----

TEST(ServeJournal, FramedRecordsRoundTrip) {
  serve::JournalJob job;
  job.id = 7;
  job.release = 40;
  job.tag = "tag-7";
  job.nodes = 3;
  job.edges = {{0, 1}, {1, 2}};

  serve::JournalSnapshot snap;
  snap.slot = 99;
  snap.jobs_submitted = 8;
  snap.jobs_finished = 8;
  snap.total_work = 24;
  snap.total_flow = 30;
  snap.max_flow = 5;
  snap.offset = 1234;
  snap.records = 17;

  const std::string lines =
      serve::EncodeOpen({"fifo/first-ready", 2, 11}) + serve::EncodeJob(job) +
      serve::EncodeAdvance({55}) + serve::EncodeSnapshot(snap);

  std::istringstream stream(lines);
  std::string line;
  std::vector<serve::JournalRecord> records;
  while (std::getline(stream, line)) {
    serve::JournalRecord record;
    std::string error;
    ASSERT_TRUE(serve::ParseJournalLine(line, &record, &error))
        << line << " -> " << error;
    records.push_back(record);
  }
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].type, serve::JournalRecord::Type::kOpen);
  EXPECT_EQ(records[0].open.policy, "fifo/first-ready");
  EXPECT_EQ(records[0].open.m, 2);
  EXPECT_EQ(records[0].open.seed, 11);
  EXPECT_EQ(records[1].type, serve::JournalRecord::Type::kJob);
  EXPECT_EQ(records[1].job.id, 7);
  EXPECT_EQ(records[1].job.release, 40);
  EXPECT_EQ(records[1].job.tag, "tag-7");
  EXPECT_EQ(records[1].job.nodes, 3);
  EXPECT_EQ(records[1].job.edges, job.edges);
  EXPECT_EQ(records[2].type, serve::JournalRecord::Type::kAdvance);
  EXPECT_EQ(records[2].advance.slot, 55);
  EXPECT_EQ(records[3].type, serve::JournalRecord::Type::kSnapshot);
  EXPECT_EQ(records[3].snapshot.slot, 99);
  EXPECT_EQ(records[3].snapshot.jobs_submitted, 8);
  EXPECT_EQ(records[3].snapshot.total_flow, 30);
  EXPECT_EQ(records[3].snapshot.offset, 1234);
  EXPECT_EQ(records[3].snapshot.records, 17);
}

TEST(ServeJournal, RejectsCorruptFramesWithDiagnostics) {
  std::string line = serve::EncodeAdvance({55});
  line.pop_back();  // strip the newline for line-level parsing

  // Flip one payload byte: the CRC must catch it.
  std::string flipped = line;
  flipped[flipped.size() - 2] ^= 1;
  serve::JournalRecord record;
  std::string error;
  EXPECT_FALSE(serve::ParseJournalLine(flipped, &record, &error));
  EXPECT_NE(error.find("crc"), std::string::npos) << error;

  // Truncated line (torn write): also a parse failure at line level.
  EXPECT_FALSE(serve::ParseJournalLine(line.substr(0, line.size() / 2),
                                       &record, &error));

  // Bad frame shapes.
  EXPECT_FALSE(serve::ParseJournalLine("nonsense", &record, &error));
  EXPECT_FALSE(serve::ParseJournalLine("", &record, &error));
  EXPECT_FALSE(serve::ParseJournalLine(
      "zzzzzzzz {\"type\": \"adv\", \"slot\": 55}", &record, &error));
}

TEST(ServeJournal, ReadToleratesTornTailButNotInteriorCorruption) {
  const std::string path = TempPath("journal-tail");
  const std::string open = serve::EncodeOpen({"fifo/first-ready", 2, 0});
  serve::JournalJob job;
  job.id = 0;
  job.release = 0;
  job.nodes = 1;
  const std::string good = open + serve::EncodeJob(job) +
                           serve::EncodeAdvance({4});

  {
    // Torn tail: a half-written line after the valid prefix.
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << good << "deadbeef {\"type\": \"adv\", \"slo";
  }
  serve::JournalReadResult result;
  std::string error;
  ASSERT_TRUE(serve::ReadJournal(path, &result, &error)) << error;
  EXPECT_TRUE(result.torn_tail);
  EXPECT_EQ(result.records.size(), 3u);
  EXPECT_EQ(result.valid_bytes, static_cast<std::int64_t>(good.size()));

  {
    // Interior corruption: the same bad line FOLLOWED by a good one.
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << open << "deadbeef {\"type\": \"adv\", \"slo\n"
        << serve::EncodeJob(job);
  }
  EXPECT_FALSE(serve::ReadJournal(path, &result, &error));
  EXPECT_NE(error.find("corrupt"), std::string::npos) << error;

  {
    // A journal must begin with its open header.
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << serve::EncodeJob(job);
  }
  EXPECT_FALSE(serve::ReadJournal(path, &result, &error));

  std::remove(path.c_str());
}

// ---- crash / recover / diff ----

TEST(ServeRecovery, CrashedAndRecoveredStreamMatchesUninterrupted) {
  constexpr int kJobs = 10000;
  constexpr int kCrashAfter = 5000;  // jobs submitted before the crash
  constexpr int kAckedBeforeCrash = 2500;  // replies read before the crash

  serve::ServeOptions options;
  options.listen = "127.0.0.1:0";
  options.policy = "fifo/first-ready";
  options.m = 2;

  // Reference: one uninterrupted run over all 60 jobs.
  std::vector<std::string> reference;
  {
    RunningServer running(options);
    ASSERT_TRUE(running.started()) << running.error();
    TestClient client(running.server().address());
    ASSERT_TRUE(client.connected());
    std::string batch;
    for (int k = 0; k < kJobs; ++k) batch += SpacedJobLine(k);
    client.send_all(batch);
    reference = client.read_lines(kJobs);
    running.stop();
    ASSERT_EQ(reference.size(), static_cast<std::size_t>(kJobs));
    EXPECT_EQ(running.server().jobs_finished(), kJobs);
  }

  const std::string journal = TempPath("journal-crash");
  std::remove(journal.c_str());

  // Crash run: journal on, 30 jobs streamed, only 15 replies read, then
  // the in-process SIGKILL.
  std::vector<std::string> crashed;
  {
    serve::ServeOptions journaled = options;
    journaled.journal_path = journal;
    RunningServer running(journaled);
    ASSERT_TRUE(running.started()) << running.error();
    TestClient client(running.server().address());
    ASSERT_TRUE(client.connected());
    std::string batch;
    for (int k = 0; k < kCrashAfter; ++k) batch += SpacedJobLine(k);
    client.send_all(batch);
    for (std::string& line : client.read_lines(kAckedBeforeCrash)) {
      crashed.push_back(std::move(line));
    }
    ASSERT_EQ(crashed.size(),
              static_cast<std::size_t>(kAckedBeforeCrash));
    running.crash();
  }

  // Recover into a fresh daemon appending to the same journal.  The
  // client resubmits its unacknowledged tags in original order (the
  // serve_client.py --reconnect contract), then streams the rest.
  {
    serve::ServeOptions recovering = options;
    recovering.journal_path = journal;
    recovering.recover_path = journal;
    RunningServer running(recovering);
    ASSERT_TRUE(running.started()) << running.error();
    EXPECT_NE(running.server().recovery_summary().find("recovered"),
              std::string::npos)
        << running.server().recovery_summary();
    EXPECT_EQ(running.server().jobs_submitted(), kCrashAfter);

    TestClient client(running.server().address());
    ASSERT_TRUE(client.connected());
    std::string batch;
    for (int k = kAckedBeforeCrash; k < kCrashAfter; ++k) {
      batch += SpacedJobLine(k);  // resubmitted unacked tags
    }
    for (int k = kCrashAfter; k < kJobs; ++k) {
      batch += SpacedJobLine(k);  // the rest of the stream
    }
    client.send_all(batch);
    for (std::string& line : client.read_lines(kJobs - kAckedBeforeCrash)) {
      crashed.push_back(std::move(line));
    }
    running.stop();

    ASSERT_EQ(crashed.size(), static_cast<std::size_t>(kJobs));
    EXPECT_EQ(running.server().jobs_submitted(), kJobs);
    EXPECT_EQ(running.server().jobs_finished(), kJobs);
    // /metrics modulo journal/recovery counters: the serving counters
    // agree with the uninterrupted run's.
    EXPECT_EQ(CounterValue(running.server().registry(),
                           "serve.jobs_submitted"), kJobs);
    EXPECT_EQ(CounterValue(running.server().registry(),
                           "serve.jobs_finished"), kJobs);
    EXPECT_GT(CounterValue(running.server().registry(),
                           "serve.recovered_jobs"), 0);
  }

  // Byte-identical replies: every line of the crashed+recovered stream
  // equals the uninterrupted run's (parked-reply delivery may reorder
  // around adopted in-flight jobs, so compare in wire-id order).
  std::vector<std::string> want = reference;
  std::vector<std::string> got = crashed;
  std::sort(want.begin(), want.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(want, got);

  std::remove(journal.c_str());
}

TEST(ServeRecovery, TornJournalTailIsDroppedAndTruncated) {
  const std::string path = TempPath("journal-torn");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    serve::JournalJob job;
    job.id = 0;
    job.release = 0;
    job.tag = "tag-0";
    job.nodes = 2;
    job.edges = {{0, 1}};
    out << serve::EncodeOpen({"fifo/first-ready", 2, 0})
        << serve::EncodeJob(job) << serve::EncodeAdvance({2})
        << "00000000 {\"type\": \"adv\", \"sl";  // the torn fsync batch
  }

  serve::ServeOptions options;
  options.listen = "127.0.0.1:0";
  options.policy = "fifo/first-ready";
  options.m = 2;
  options.journal_path = path;
  options.recover_path = path;
  RunningServer running(options);
  ASSERT_TRUE(running.started()) << running.error();
  EXPECT_NE(running.server().recovery_summary().find("torn tail"),
            std::string::npos)
      << running.server().recovery_summary();
  EXPECT_EQ(running.server().jobs_submitted(), 1);

  // The resubmitted tag claims the recovered job instead of duplicating.
  TestClient client(running.server().address());
  ASSERT_TRUE(client.connected());
  client.send_all("{\"id\": \"tag-0\", \"release\": 0, \"nodes\": 2, "
                  "\"edges\": [[0, 1]]}\n");
  const auto replies = client.read_lines(1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(TagOf(replies[0]), "tag-0");
  EXPECT_NE(replies[0].find("\"job_id\": 0"), std::string::npos)
      << replies[0];
  running.stop();
  EXPECT_EQ(running.server().jobs_submitted(), 1);

  // The torn bytes were truncated away: a second recovery of the same
  // (appended-to) file parses cleanly end to end.
  serve::JournalReadResult result;
  std::string error;
  ASSERT_TRUE(serve::ReadJournal(path, &result, &error)) << error;
  EXPECT_FALSE(result.torn_tail);
  std::remove(path.c_str());
}

TEST(ServeRecovery, RefusesForeignAndCorruptJournals) {
  const std::string path = TempPath("journal-foreign");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << serve::EncodeOpen({"fifo/first-ready", 8, 0});  // m = 8
  }
  serve::ServeOptions options;
  options.listen = "127.0.0.1:0";
  options.policy = "fifo/first-ready";
  options.m = 2;  // daemon runs m = 2: identity mismatch
  options.recover_path = path;
  {
    RunningServer running(options);
    EXPECT_FALSE(running.started());
    EXPECT_NE(running.error().find("identity mismatch"), std::string::npos)
        << running.error();
  }

  // --journal (without --recover) refuses to clobber a non-empty file.
  {
    serve::ServeOptions clobber = options;
    clobber.recover_path.clear();
    clobber.journal_path = path;
    RunningServer running(clobber);
    EXPECT_FALSE(running.started());
    EXPECT_NE(running.error().find("--recover"), std::string::npos)
        << running.error();
  }

  // --journal with a DIFFERENT file than --recover is refused.
  {
    serve::ServeOptions split = options;
    split.journal_path = path + ".other";
    RunningServer running(split);
    EXPECT_FALSE(running.started());
    EXPECT_NE(running.error().find("same file"), std::string::npos)
        << running.error();
  }
  std::remove(path.c_str());
}

TEST(ServeRecovery, RotationTruncatesAndKeepsWireIdsDense) {
  const std::string path = TempPath("journal-rotate");
  std::remove(path.c_str());

  serve::ServeOptions options;
  options.listen = "127.0.0.1:0";
  options.policy = "fifo/first-ready";
  options.m = 2;
  options.journal_path = path;
  options.journal_rotate = true;
  options.snapshot_every = 4;  // rotate aggressively for the test
  {
    RunningServer running(options);
    ASSERT_TRUE(running.started()) << running.error();
    TestClient client(running.server().address());
    ASSERT_TRUE(client.connected());
    std::string batch;
    for (int k = 0; k < 8; ++k) batch += SpacedJobLine(k);
    client.send_all(batch);
    ASSERT_EQ(client.read_lines(8).size(), 8u);
    // All replies delivered: the daemon is quiescent, so within a few
    // poll cycles it must rotate the journal down to header + snapshot.
    // (Watch the file, not the registry — the server thread owns that.)
    bool rotated = false;
    for (int spin = 0; spin < 200 && !rotated; ++spin) {
      serve::JournalReadResult peek;
      std::string peek_error;
      rotated = serve::ReadJournal(path, &peek, &peek_error) &&
                peek.records.size() == 2;
      if (!rotated) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    EXPECT_TRUE(rotated) << "journal never rotated";
    running.stop();
    EXPECT_GT(CounterValue(running.server().registry(),
                           "serve.journal_rotations"), 0);
  }

  // The rotated file is exactly open header + base snapshot.
  serve::JournalReadResult rotated;
  std::string error;
  ASSERT_TRUE(serve::ReadJournal(path, &rotated, &error)) << error;
  ASSERT_EQ(rotated.records.size(), 2u);
  EXPECT_EQ(rotated.records[1].type, serve::JournalRecord::Type::kSnapshot);
  EXPECT_EQ(rotated.records[1].snapshot.jobs_submitted, 8);
  EXPECT_EQ(rotated.records[1].snapshot.jobs_finished, 8);

  // Recovery from the rotated journal warm-starts and keeps wire ids
  // dense: the first post-recovery job is job_id 8.
  serve::ServeOptions recovering = options;
  recovering.recover_path = path;
  RunningServer running(recovering);
  ASSERT_TRUE(running.started()) << running.error();
  EXPECT_EQ(running.server().jobs_submitted(), 8);
  TestClient client(running.server().address());
  ASSERT_TRUE(client.connected());
  client.send_all("{\"id\": \"tag-8\", \"release\": 0, "
                  "\"parents\": [-1, 0, 1]}\n");
  const auto replies = client.read_lines(1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_NE(replies[0].find("\"job_id\": 8"), std::string::npos)
      << replies[0];
  running.stop();
  std::remove(path.c_str());
}

TEST(ServeRecovery, StatefulPolicyRefusesSnapshotsButReplaysFully) {
  const std::string path = TempPath("journal-stateful");
  std::remove(path.c_str());

  // fifo/random consumes RNG state across slots: rotation would lose
  // it, so --journal-rotate is refused up front...
  serve::ServeOptions options;
  options.listen = "127.0.0.1:0";
  options.policy = "fifo/random";
  options.m = 2;
  options.journal_path = path;
  options.journal_rotate = true;
  {
    RunningServer running(options);
    EXPECT_FALSE(running.started());
    EXPECT_NE(running.error().find("warm"), std::string::npos)
        << running.error();
  }

  // ...but a plain journal + full replay is still exact for it.
  options.journal_rotate = false;
  {
    RunningServer running(options);
    ASSERT_TRUE(running.started()) << running.error();
    TestClient client(running.server().address());
    ASSERT_TRUE(client.connected());
    std::string batch;
    for (int k = 0; k < 6; ++k) batch += SpacedJobLine(k);
    client.send_all(batch);
    ASSERT_EQ(client.read_lines(6).size(), 6u);
    running.crash();
  }
  serve::ServeOptions recovering = options;
  recovering.recover_path = path;
  RunningServer running(recovering);
  ASSERT_TRUE(running.started()) << running.error();
  EXPECT_EQ(running.server().jobs_submitted(), 6);
  EXPECT_EQ(running.server().jobs_finished(), 6);
  running.stop();
  std::remove(path.c_str());
}

// ---- overload shedding ----

TEST(ServeOverload, PendingJobsWatermarkShedsExplicitly) {
  serve::ServeOptions options;
  options.listen = "127.0.0.1:0";
  options.policy = "fifo/first-ready";
  options.m = 2;
  options.max_pending_jobs = 4;
  RunningServer running(options);
  ASSERT_TRUE(running.started()) << running.error();

  TestClient client(running.server().address());
  ASSERT_TRUE(client.connected());
  // One batch = one poll cycle: 4 accepted, 6 shed before any finish.
  std::string batch;
  for (int k = 0; k < 10; ++k) {
    batch += "{\"id\": \"w-" + std::to_string(k) +
             "\", \"release\": 0, \"parents\": [-1, 0, 1]}\n";
  }
  client.send_all(batch);
  const auto replies = client.read_lines(10);
  ASSERT_EQ(replies.size(), 10u);
  int overloaded = 0, finished = 0;
  for (const std::string& reply : replies) {
    if (reply.find("\"error\"") != std::string::npos) {
      EXPECT_NE(reply.find("overloaded"), std::string::npos) << reply;
      EXPECT_NE(reply.find("watermark 4"), std::string::npos) << reply;
      ++overloaded;
    } else {
      ++finished;
    }
  }
  EXPECT_EQ(overloaded, 6);
  EXPECT_EQ(finished, 4);
  running.stop();
  EXPECT_EQ(CounterValue(running.server().registry(),
                         "serve.overloaded_replies"), 6);
  EXPECT_EQ(running.server().jobs_submitted(), 4);
}

TEST(ServeOverload, ConnectionCeilingRejectsExtraClients) {
  serve::ServeOptions options;
  options.listen = "127.0.0.1:0";
  options.policy = "fifo/first-ready";
  options.m = 2;
  options.max_connections = 1;
  RunningServer running(options);
  ASSERT_TRUE(running.started()) << running.error();

  TestClient first(running.server().address());
  ASSERT_TRUE(first.connected());
  first.send_all("{\"release\": 0, \"parents\": [-1]}\n");
  ASSERT_EQ(first.read_lines(1).size(), 1u);  // first client is in

  TestClient second(running.server().address());
  ASSERT_TRUE(second.connected());
  const std::string response = second.read_to_eof();
  EXPECT_NE(response.find("overloaded: connection limit (1)"),
            std::string::npos)
      << response;

  // The admitted client keeps working at the ceiling.
  first.send_all("{\"release\": 0, \"parents\": [-1, 0]}\n");
  const auto more = first.read_lines(1);
  ASSERT_EQ(more.size(), 1u);
  EXPECT_NE(more[0].find("\"flow\": 2"), std::string::npos) << more[0];

  running.stop();
  EXPECT_EQ(CounterValue(running.server().registry(),
                         "serve.rejected_connections"), 1);
}

TEST(ServeOverload, IdleDeadlineClosesStuckConnections) {
  serve::ServeOptions options;
  options.listen = "127.0.0.1:0";
  options.policy = "fifo/first-ready";
  options.m = 2;
  options.idle_timeout_ms = 60;
  options.idle_poll_ms = 10;
  RunningServer running(options);
  ASSERT_TRUE(running.started()) << running.error();

  // A connection that dribbles half a line and goes silent is closed at
  // the deadline instead of pinning a socket + buffer forever.
  TestClient stuck(running.server().address());
  ASSERT_TRUE(stuck.connected());
  stuck.send_all("{\"release\": 0, ");  // no newline, then silence
  const std::string response = stuck.read_to_eof();  // blocks until close
  EXPECT_EQ(response, "");

  running.stop();
  EXPECT_EQ(CounterValue(running.server().registry(),
                         "serve.idle_timeouts"), 1);
  EXPECT_EQ(running.server().jobs_submitted(), 0);
}

TEST(ServeRecovery, HealthyJournaledRunMatchesPlainRunByteForByte) {
  serve::ServeOptions options;
  options.listen = "127.0.0.1:0";
  options.policy = "fifo/first-ready";
  options.m = 2;

  auto stream_all = [&](const serve::ServeOptions& opts) {
    RunningServer running(opts);
    EXPECT_TRUE(running.started()) << running.error();
    TestClient client(running.server().address());
    EXPECT_TRUE(client.connected());
    std::string batch;
    for (int k = 0; k < 12; ++k) batch += SpacedJobLine(k);
    client.send_all(batch);
    std::vector<std::string> replies = client.read_lines(12);
    running.stop();
    return replies;
  };

  const std::vector<std::string> plain = stream_all(options);

  const std::string path = TempPath("journal-healthy");
  std::remove(path.c_str());
  serve::ServeOptions journaled = options;
  journaled.journal_path = path;
  const std::vector<std::string> logged = stream_all(journaled);

  // Journaling is invisible on the wire: byte-identical replies.
  EXPECT_EQ(plain, logged);
  // And the journal holds the whole history: header + 12 jobs + advs.
  serve::JournalReadResult result;
  std::string error;
  ASSERT_TRUE(serve::ReadJournal(path, &result, &error)) << error;
  int jobs = 0;
  for (const serve::JournalRecord& record : result.records) {
    jobs += record.type == serve::JournalRecord::Type::kJob ? 1 : 0;
  }
  EXPECT_EQ(jobs, 12);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace otsched
