// Tests for sched/fifo.h: the FIFO constraints of Section 3, work
// conservation, tie-break variants, and the classic chain guarantee.
#include <gtest/gtest.h>

#include "dag/builders.h"
#include "gen/arrivals.h"
#include "gen/random_trees.h"
#include "opt/brute_force.h"
#include "opt/lower_bounds.h"
#include "sched/fifo.h"
#include "sim/validator.h"

namespace otsched {
namespace {

/// Wraps FIFO and asserts, at every slot, the two defining constraints
/// from Section 3: (1) if fewer than m subjobs are ready, all run; (2) a
/// scheduled subjob never bypasses an older job's unscheduled ready
/// subjob.
class FifoContractChecker : public Scheduler {
 public:
  explicit FifoContractChecker(FifoScheduler::Options options)
      : inner_(std::move(options)) {}

  std::string name() const override { return inner_.name(); }
  bool requires_clairvoyance() const override {
    return inner_.requires_clairvoyance();
  }
  void reset(int m, JobId n) override { inner_.reset(m, n); }
  void on_arrival(JobId id, const SchedulerView& view) override {
    inner_.on_arrival(id, view);
  }

  void pick(const SchedulerView& view, std::vector<SubjobRef>& out) override {
    inner_.pick(view, out);

    std::int64_t total_ready = 0;
    for (JobId job : view.alive()) {
      total_ready += static_cast<std::int64_t>(view.ready(job).size());
    }
    // Constraint (1): work conservation.
    const auto picked = static_cast<std::int64_t>(out.size());
    EXPECT_EQ(picked, std::min<std::int64_t>(view.m(), total_ready))
        << "slot " << view.slot();

    // Constraint (2): age priority.  Count picks per job; a job may be
    // partially served only if every younger alive job got nothing and
    // every older alive job was fully served.
    std::vector<std::int64_t> picked_of(
        static_cast<std::size_t>(view.job_count()), 0);
    for (const SubjobRef& ref : out) {
      ++picked_of[static_cast<std::size_t>(ref.job)];
    }
    bool seen_partial = false;
    for (JobId job : view.alive()) {  // alive() is FIFO order
      const auto ready =
          static_cast<std::int64_t>(view.ready(job).size());
      const auto got = picked_of[static_cast<std::size_t>(job)];
      EXPECT_LE(got, ready);
      if (seen_partial) {
        EXPECT_EQ(got, 0) << "job " << job << " served after a partially "
                          << "served older job at slot " << view.slot();
      } else if (got < ready) {
        seen_partial = true;
      }
    }
  }

 private:
  FifoScheduler inner_;
};

Instance MixedTreeInstance(std::uint64_t seed, int jobs) {
  Rng rng(seed);
  return MakePoissonArrivals(
      jobs, 0.2,
      [](std::int64_t i, Rng& r) {
        return MakeTree(static_cast<TreeFamily>(i % 4), 30, r);
      },
      rng);
}

class FifoVariantTest : public ::testing::TestWithParam<FifoTieBreak> {};

TEST_P(FifoVariantTest, HonorsFifoContractAndFeasibility) {
  FifoScheduler::Options options;
  options.tie_break = GetParam();
  if (options.tie_break == FifoTieBreak::kAvoidMarked) {
    options.deprioritize = [](JobId, NodeId v) { return v % 3 == 0; };
  }
  FifoContractChecker checker(std::move(options));

  const Instance instance = MixedTreeInstance(12345, 12);
  const SimResult result = Simulate(instance, 4, checker);
  const auto report = ValidateSchedule(result.full_schedule(), instance);
  EXPECT_TRUE(report.feasible) << report.violation;
  EXPECT_TRUE(result.flows.all_completed);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, FifoVariantTest,
    ::testing::Values(FifoTieBreak::kFirstReady, FifoTieBreak::kLastReady,
                      FifoTieBreak::kRandom, FifoTieBreak::kAvoidMarked,
                      FifoTieBreak::kLpfHeight,
                      FifoTieBreak::kMostChildren),
    [](const auto& info) {
      std::string name = ToString(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(Fifo, ClairvoyanceDeclarations) {
  EXPECT_FALSE(FifoScheduler().requires_clairvoyance());
  FifoScheduler::Options lpf;
  lpf.tie_break = FifoTieBreak::kLpfHeight;
  EXPECT_TRUE(FifoScheduler(std::move(lpf)).requires_clairvoyance());
}

TEST(Fifo, NonClairvoyantVariantsRunWithDagAccessDisabled) {
  // Running with clairvoyance force-disabled proves the default FIFO
  // never touches job DAGs (it would abort if it did).
  const Instance instance = MixedTreeInstance(99, 8);
  FifoScheduler fifo;
  SimOptions options;
  options.clairvoyance = ClairvoyanceOverride::kDeny;
  const SimResult result = Simulate(instance, 3, fifo, options);
  EXPECT_TRUE(result.flows.all_completed);
}

TEST(Fifo, SequentialJobsCompleteInArrivalOrder) {
  // Chains on m processors: FIFO never reorders completions of
  // equal-length chains.
  Instance instance;
  for (int i = 0; i < 6; ++i) {
    instance.add_job(Job(MakeChain(4), i));
  }
  FifoScheduler fifo;
  const SimResult result = Simulate(instance, 2, fifo);
  for (JobId id = 0; id + 1 < instance.job_count(); ++id) {
    EXPECT_LE(result.flows.completion[static_cast<std::size_t>(id)],
              result.flows.completion[static_cast<std::size_t>(id) + 1]);
  }
}

TEST(Fifo, ChainsStayWithinThreeMinusTwoOverM) {
  // Bender et al.: FIFO is (3 - 2/m)-competitive on chains.  Check the
  // measured ratio against brute-force OPT on a small stress instance.
  Instance instance;
  instance.add_job(Job(MakeChain(4), 0));
  instance.add_job(Job(MakeChain(4), 0));
  instance.add_job(Job(MakeChain(3), 1));
  instance.add_job(Job(MakeChain(2), 2));
  instance.add_job(Job(MakeChain(2), 2));

  const int m = 2;
  FifoScheduler fifo;
  const SimResult result = Simulate(instance, m, fifo);
  const Time opt = BruteForceOpt(instance, m);
  EXPECT_LE(static_cast<double>(result.flows.max_flow),
            (3.0 - 2.0 / m) * static_cast<double>(opt) + 1e-9);
}

TEST(Fifo, FullyParallelJobsAreOptimal) {
  // For fully parallelizable jobs FIFO is optimal for max flow.
  Rng rng(7);
  Instance instance = MakePeriodicArrivals(
      10, 3, [](std::int64_t, Rng& r) {
        return MakeParallelBlob(
            static_cast<NodeId>(r.next_in_range(1, 12)));
      },
      rng);
  const int m = 4;
  FifoScheduler fifo;
  const SimResult result = Simulate(instance, m, fifo);
  const Time lb = MaxFlowLowerBound(instance, m);
  EXPECT_EQ(result.flows.max_flow, lb);
}

TEST(Fifo, RandomTieBreakIsSeedDeterministic) {
  const Instance instance = MixedTreeInstance(4242, 10);
  FifoScheduler::Options options;
  options.tie_break = FifoTieBreak::kRandom;
  options.seed = 77;
  FifoScheduler a(options);
  FifoScheduler b(options);
  const SimResult ra = Simulate(instance, 3, a);
  const SimResult rb = Simulate(instance, 3, b);
  EXPECT_EQ(ra.flows.max_flow, rb.flows.max_flow);
  EXPECT_EQ(ra.stats.horizon, rb.stats.horizon);
}

TEST(Fifo, NamesAreDistinct) {
  FifoScheduler::Options options;
  options.tie_break = FifoTieBreak::kRandom;
  EXPECT_NE(FifoScheduler().name(),
            FifoScheduler(std::move(options)).name());
}

}  // namespace
}  // namespace otsched
