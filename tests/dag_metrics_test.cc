// Tests for dag/metrics.h: work, span, heights, depths, the W(d) profile.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dag/builders.h"
#include "dag/metrics.h"
#include "gen/random_trees.h"

namespace otsched {
namespace {

TEST(Metrics, EmptyDag) {
  const DagMetrics m = ComputeMetrics(Dag());
  EXPECT_EQ(m.work, 0);
  EXPECT_EQ(m.span, 0);
  EXPECT_EQ(m.w_deeper(0), 0);
}

TEST(Metrics, SingleNode) {
  const DagMetrics m = ComputeMetrics(MakeChain(1));
  EXPECT_EQ(m.work, 1);
  EXPECT_EQ(m.span, 1);
  EXPECT_EQ(m.height[0], 1);
  EXPECT_EQ(m.depth[0], 1);
  EXPECT_EQ(m.w_deeper(0), 1);
  EXPECT_EQ(m.w_deeper(1), 0);
}

TEST(Metrics, Chain) {
  const DagMetrics m = ComputeMetrics(MakeChain(5));
  EXPECT_EQ(m.work, 5);
  EXPECT_EQ(m.span, 5);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(m.depth[static_cast<std::size_t>(v)], v + 1);
    EXPECT_EQ(m.height[static_cast<std::size_t>(v)], 5 - v);
  }
  // W(d) = 5 - d along a chain.
  for (std::int64_t d = 0; d <= 5; ++d) EXPECT_EQ(m.w_deeper(d), 5 - d);
}

TEST(Metrics, Star) {
  const DagMetrics m = ComputeMetrics(MakeStar(4));
  EXPECT_EQ(m.span, 2);
  EXPECT_EQ(m.height[0], 2);
  EXPECT_EQ(m.w_deeper(0), 5);
  EXPECT_EQ(m.w_deeper(1), 4);  // the four leaves sit at depth 2
  EXPECT_EQ(m.w_deeper(2), 0);
}

TEST(Metrics, ParallelBlob) {
  const DagMetrics m = ComputeMetrics(MakeParallelBlob(6));
  EXPECT_EQ(m.span, 1);
  EXPECT_EQ(m.w_deeper(0), 6);
  EXPECT_EQ(m.w_deeper(1), 0);
}

TEST(Metrics, DiamondUsesLongestPathDepth) {
  // 0 -> 1 -> 3, 0 -> 3: node 3's depth is the LONGEST path (3 nodes).
  const std::vector<std::pair<NodeId, NodeId>> edges = {
      {0, 1}, {1, 3}, {0, 3}, {0, 2}};
  const DagMetrics m = ComputeMetrics(MakeFromEdges(4, edges));
  EXPECT_EQ(m.depth[3], 3);
  EXPECT_EQ(m.height[0], 3);
  EXPECT_EQ(m.span, 3);
}

TEST(Metrics, TopoOrderRespectsEdges) {
  Rng rng(5);
  const Dag tree = MakeAttachmentTree(64, 0.4, rng);
  const DagMetrics m = ComputeMetrics(tree);
  std::vector<int> position(64, -1);
  for (std::size_t i = 0; i < m.topo_order.size(); ++i) {
    position[static_cast<std::size_t>(m.topo_order[i])] =
        static_cast<int>(i);
  }
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    for (NodeId c : tree.children(v)) {
      EXPECT_LT(position[static_cast<std::size_t>(v)],
                position[static_cast<std::size_t>(c)]);
    }
  }
}

TEST(Metrics, CompleteBinaryTreeProfile) {
  const DagMetrics m = ComputeMetrics(MakeCompleteTree(2, 3));  // 7 nodes
  EXPECT_EQ(m.span, 3);
  EXPECT_EQ(m.w_deeper(0), 7);
  EXPECT_EQ(m.w_deeper(1), 6);
  EXPECT_EQ(m.w_deeper(2), 4);
  EXPECT_EQ(m.w_deeper(3), 0);
}

TEST(Metrics, WDeeperToleratesOutOfRange) {
  const DagMetrics m = ComputeMetrics(MakeChain(3));
  EXPECT_EQ(m.w_deeper(-1), 3);
  EXPECT_EQ(m.w_deeper(100), 0);
}

TEST(Metrics, SpanShorthandMatches) {
  Rng rng(77);
  const Dag tree = MakeAttachmentTree(100, 0.7, rng);
  EXPECT_EQ(Span(tree), ComputeMetrics(tree).span);
}

// Property sweep: structural invariants on random trees.
class MetricsPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MetricsPropertyTest, InvariantsHold) {
  const auto [seed, bias] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const Dag tree = MakeAttachmentTree(200, bias, rng);
  const DagMetrics m = ComputeMetrics(tree);

  EXPECT_EQ(m.work, 200);
  EXPECT_GE(m.span, 1);
  EXPECT_LE(m.span, 200);
  // W is non-increasing in d, W(0) = work, W(span) = 0.
  EXPECT_EQ(m.w_deeper(0), m.work);
  EXPECT_EQ(m.w_deeper(m.span), 0);
  for (std::int64_t d = 1; d <= m.span; ++d) {
    // Every depth in [1, span] is inhabited (any deepest node has an
    // ancestor at each shallower depth), so W strictly decreases.
    EXPECT_LT(m.w_deeper(d), m.w_deeper(d - 1));
  }
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    // depth + height - 1 <= span, with equality on some critical path.
    EXPECT_LE(m.depth[static_cast<std::size_t>(v)] +
                  m.height[static_cast<std::size_t>(v)] - 1,
              m.span);
    // Child depth is parent depth + 1 in a tree.
    for (NodeId c : tree.children(v)) {
      EXPECT_EQ(m.depth[static_cast<std::size_t>(c)],
                m.depth[static_cast<std::size_t>(v)] + 1);
      EXPECT_GT(m.height[static_cast<std::size_t>(v)],
                m.height[static_cast<std::size_t>(c)]);
    }
  }
  // Some node realizes the span.
  bool span_realized = false;
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    if (m.depth[static_cast<std::size_t>(v)] == m.span) span_realized = true;
  }
  EXPECT_TRUE(span_realized);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MetricsPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0.0, 0.5, 0.9)));

}  // namespace
}  // namespace otsched
