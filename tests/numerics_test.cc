// Tests for gen/numerics.h: structural formulas of the HPC task DAGs.
#include <gtest/gtest.h>

#include "dag/metrics.h"
#include "dag/validate.h"
#include "gen/numerics.h"
#include "sched/fifo.h"
#include "sim/validator.h"

namespace otsched {
namespace {

TEST(Cholesky, TaskCountsAndSpan) {
  for (int n : {1, 2, 3, 4, 6}) {
    const Dag dag = MakeTiledCholeskyDag(n);
    const std::int64_t potrf = n;
    const std::int64_t trsm = static_cast<std::int64_t>(n) * (n - 1) / 2;
    const std::int64_t syrk = trsm;
    const std::int64_t gemm =
        static_cast<std::int64_t>(n) * (n - 1) * (n - 2) / 6;
    EXPECT_EQ(dag.node_count(), potrf + trsm + syrk + gemm) << "n=" << n;
    EXPECT_TRUE(IsAcyclic(dag));
    const std::int64_t expected_span = n == 1 ? 1 : 3 * n - 2;
    EXPECT_EQ(Span(dag), expected_span) << "n=" << n;
  }
}

TEST(Cholesky, IsAGenuineDagNotATree) {
  const Dag dag = MakeTiledCholeskyDag(4);
  EXPECT_FALSE(IsOutForest(dag));  // GEMM joins two TRSMs
  // Single source: POTRF(0).
  EXPECT_EQ(dag.roots().size(), 1u);
}

TEST(Lu, TaskCountsAndAcyclicity) {
  for (int n : {1, 2, 3, 5}) {
    const Dag dag = MakeTiledLuDag(n);
    const std::int64_t getrf = n;
    const std::int64_t trsm = 2LL * n * (n - 1) / 2;
    std::int64_t gemm = 0;
    for (int k = 0; k < n; ++k) {
      gemm += static_cast<std::int64_t>(n - 1 - k) * (n - 1 - k);
    }
    EXPECT_EQ(dag.node_count(), getrf + trsm + gemm) << "n=" << n;
    EXPECT_TRUE(IsAcyclic(dag));
  }
  // Span of LU: GETRF -> TRSM -> GEMM per step, 3(n-1)+1.
  EXPECT_EQ(Span(MakeTiledLuDag(4)), 10);
}

TEST(Stencil, GridStructure) {
  const Dag dag = MakeStencil1dDag(5, 4);
  EXPECT_EQ(dag.node_count(), 20);
  EXPECT_EQ(Span(dag), 4);
  EXPECT_TRUE(IsAcyclic(dag));
  // Interior cell depends on three neighbours; borders on two.
  EXPECT_EQ(dag.in_degree(5 + 2), 3);  // (t=1, i=2)
  EXPECT_EQ(dag.in_degree(5 + 0), 2);  // (t=1, i=0)
  // First row are the only sources.
  EXPECT_EQ(dag.roots().size(), 5u);
}

TEST(Fft, ButterflyStructure) {
  const int log2n = 4;  // n = 16
  const Dag dag = MakeFftButterflyDag(log2n);
  EXPECT_EQ(dag.node_count(), log2n * 8);  // log2n * n/2
  EXPECT_EQ(Span(dag), log2n);
  EXPECT_TRUE(IsAcyclic(dag));
  // Every butterfly beyond stage 0 joins exactly two predecessors.
  for (NodeId v = 8; v < dag.node_count(); ++v) {
    EXPECT_EQ(dag.in_degree(v), 2) << "node " << v;
  }
  // Every butterfly before the last stage feeds exactly two successors.
  for (NodeId v = 0; v < (log2n - 1) * 8; ++v) {
    EXPECT_EQ(dag.out_degree(v), 2) << "node " << v;
  }
}

TEST(Numerics, AllSchedulableEndToEnd) {
  Instance instance;
  instance.add_job(Job(MakeTiledCholeskyDag(5), 0, "cholesky"));
  instance.add_job(Job(MakeTiledLuDag(4), 3, "lu"));
  instance.add_job(Job(MakeStencil1dDag(8, 6), 6, "stencil"));
  instance.add_job(Job(MakeFftButterflyDag(5), 9, "fft"));
  FifoScheduler fifo;
  const SimResult result = Simulate(instance, 6, fifo);
  const auto report = ValidateSchedule(result.full_schedule(), instance);
  EXPECT_TRUE(report.feasible) << report.violation;
  EXPECT_TRUE(result.flows.all_completed);
}

TEST(Numerics, CholeskyParallelismProfileIsHumped) {
  // Mid-factorization there are many independent GEMMs; the width of an
  // LPF-style greedy run must exceed the start/end widths.
  const Dag dag = MakeTiledCholeskyDag(8);
  const DagMetrics metrics = ComputeMetrics(dag);
  // Count nodes per depth: the middle depths are the widest.
  std::vector<int> width(static_cast<std::size_t>(metrics.span) + 1, 0);
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    ++width[static_cast<std::size_t>(
        metrics.depth[static_cast<std::size_t>(v)])];
  }
  int peak = 0;
  for (int w : width) peak = std::max(peak, w);
  EXPECT_GT(peak, width[1] * 3);
  EXPECT_GT(peak, width.back() * 3);
}

}  // namespace
}  // namespace otsched
