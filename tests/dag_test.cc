// Tests for dag/dag.h (storage + disjoint union) and dag/builders.h.
#include <gtest/gtest.h>

#include <algorithm>

#include "dag/builders.h"
#include "dag/dag.h"

namespace otsched {
namespace {

TEST(DagBuilder, EmptyDag) {
  Dag dag = Dag::Builder().build();
  EXPECT_EQ(dag.node_count(), 0);
  EXPECT_EQ(dag.edge_count(), 0);
  EXPECT_TRUE(dag.empty());
  EXPECT_TRUE(dag.roots().empty());
}

TEST(DagBuilder, SingleNode) {
  Dag::Builder builder;
  EXPECT_EQ(builder.add_node(), 0);
  Dag dag = std::move(builder).build();
  EXPECT_EQ(dag.node_count(), 1);
  EXPECT_EQ(dag.in_degree(0), 0);
  EXPECT_EQ(dag.out_degree(0), 0);
  EXPECT_EQ(dag.roots(), std::vector<NodeId>{0});
  EXPECT_EQ(dag.leaves(), std::vector<NodeId>{0});
}

TEST(DagBuilder, AdjacencyIsConsistentBothDirections) {
  Dag::Builder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(0, 2);
  builder.add_edge(1, 3);
  builder.add_edge(2, 3);
  Dag dag = std::move(builder).build();

  EXPECT_EQ(dag.out_degree(0), 2);
  EXPECT_EQ(dag.in_degree(3), 2);
  auto children0 = dag.children(0);
  EXPECT_TRUE(std::find(children0.begin(), children0.end(), 1) !=
              children0.end());
  EXPECT_TRUE(std::find(children0.begin(), children0.end(), 2) !=
              children0.end());
  auto parents3 = dag.parents(3);
  EXPECT_EQ(parents3.size(), 2u);
  // Every edge appears once in each direction.
  std::int64_t forward = 0;
  std::int64_t backward = 0;
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    forward += dag.out_degree(v);
    backward += dag.in_degree(v);
  }
  EXPECT_EQ(forward, dag.edge_count());
  EXPECT_EQ(backward, dag.edge_count());
}

TEST(DagBuilder, AddNodesBulk) {
  Dag::Builder builder;
  EXPECT_EQ(builder.add_nodes(5), 0);
  EXPECT_EQ(builder.add_nodes(3), 5);
  EXPECT_EQ(builder.node_count(), 8);
}

TEST(DisjointUnion, CombinesAndOffsets) {
  std::vector<Dag> parts;
  parts.push_back(MakeChain(3));
  parts.push_back(MakeStar(2));
  std::vector<NodeId> offsets;
  Dag merged = DisjointUnion(parts, &offsets);
  EXPECT_EQ(merged.node_count(), 6);
  EXPECT_EQ(merged.edge_count(), 4);
  ASSERT_EQ(offsets.size(), 2u);
  EXPECT_EQ(offsets[0], 0);
  EXPECT_EQ(offsets[1], 3);
  // Chain edges live at 0->1->2; star root 3 -> {4, 5}.
  EXPECT_EQ(merged.out_degree(3), 2);
  EXPECT_EQ(merged.in_degree(0), 0);
  EXPECT_EQ(merged.in_degree(4), 1);
}

TEST(DisjointUnion, EmptyList) {
  Dag merged = DisjointUnion({});
  EXPECT_TRUE(merged.empty());
}

TEST(Builders, Chain) {
  Dag chain = MakeChain(5);
  EXPECT_EQ(chain.node_count(), 5);
  EXPECT_EQ(chain.edge_count(), 4);
  for (NodeId v = 0; v + 1 < 5; ++v) {
    ASSERT_EQ(chain.out_degree(v), 1);
    EXPECT_EQ(chain.children(v)[0], v + 1);
  }
  EXPECT_EQ(chain.out_degree(4), 0);
}

TEST(Builders, ChainOfOneAndZero) {
  EXPECT_EQ(MakeChain(1).node_count(), 1);
  EXPECT_EQ(MakeChain(0).node_count(), 0);
}

TEST(Builders, Star) {
  Dag star = MakeStar(4);
  EXPECT_EQ(star.node_count(), 5);
  EXPECT_EQ(star.out_degree(0), 4);
  for (NodeId v = 1; v <= 4; ++v) {
    EXPECT_EQ(star.in_degree(v), 1);
    EXPECT_EQ(star.out_degree(v), 0);
  }
}

TEST(Builders, ParallelBlobHasNoEdges) {
  Dag blob = MakeParallelBlob(7);
  EXPECT_EQ(blob.node_count(), 7);
  EXPECT_EQ(blob.edge_count(), 0);
  EXPECT_EQ(blob.roots().size(), 7u);
}

TEST(Builders, CompleteBinaryTree) {
  Dag tree = MakeCompleteTree(2, 4);  // 1 + 2 + 4 + 8
  EXPECT_EQ(tree.node_count(), 15);
  EXPECT_EQ(tree.roots().size(), 1u);
  EXPECT_EQ(tree.leaves().size(), 8u);
}

TEST(Builders, CompleteUnaryTreeIsChain) {
  Dag tree = MakeCompleteTree(1, 6);
  EXPECT_EQ(tree.node_count(), 6);
  EXPECT_EQ(tree.leaves().size(), 1u);
}

TEST(Builders, LayeredKeyForestShape) {
  const std::vector<NodeId> sizes = {3, 2, 4};
  std::vector<NodeId> keys;
  Dag forest = MakeLayeredKeyForest(sizes, &keys);
  EXPECT_EQ(forest.node_count(), 9);
  ASSERT_EQ(keys.size(), 3u);
  // Layer-1 nodes are all roots.
  EXPECT_EQ(forest.in_degree(keys[0]), 0);
  // Every layer-2 node is a child of key 1.
  EXPECT_EQ(forest.out_degree(keys[0]), 2);
  // Key 2's children form layer 3.
  EXPECT_EQ(forest.out_degree(keys[1]), 4);
  // The final key has no children.
  EXPECT_EQ(forest.out_degree(keys[2]), 0);
  // Non-key layer members are leaves.
  std::int64_t leaf_count = forest.leaves().size();
  // Layer 1 non-keys (2) + layer 2 non-keys (1) + all of layer 3 (4).
  EXPECT_EQ(leaf_count, 7);
}

TEST(Builders, ForkJoinIsNotATree) {
  Dag diamond = MakeForkJoin(3);
  EXPECT_EQ(diamond.node_count(), 5);
  EXPECT_EQ(diamond.in_degree(4), 3);  // the sink
}

TEST(Builders, SeriesComposeConnectsSinksToSources) {
  Dag series = SeriesCompose(MakeChain(2), MakeStar(2));
  // chain(2) has one leaf (node 1); star root is first node of part 2.
  EXPECT_EQ(series.node_count(), 5);
  EXPECT_EQ(series.out_degree(1), 1);  // leaf of the chain now points on
  EXPECT_EQ(series.in_degree(2), 1);   // star root gained a parent
}

TEST(Builders, ParallelComposeIsDisjoint) {
  Dag par = ParallelCompose(MakeChain(2), MakeChain(3));
  EXPECT_EQ(par.node_count(), 5);
  EXPECT_EQ(par.edge_count(), 3);
  EXPECT_EQ(par.roots().size(), 2u);
}

TEST(Builders, SpineWithBursts) {
  Dag dag = MakeSpineWithBursts(3, 1);  // spine of 3, each spawning 2 leaves
  EXPECT_EQ(dag.node_count(), 9);
  EXPECT_EQ(dag.roots().size(), 1u);
}

TEST(Builders, FromEdges) {
  const std::vector<std::pair<NodeId, NodeId>> edges = {{0, 1}, {1, 2}};
  Dag dag = MakeFromEdges(3, edges);
  EXPECT_EQ(dag.edge_count(), 2);
  EXPECT_EQ(dag.children(1)[0], 2);
}

}  // namespace
}  // namespace otsched
