// Version-portable GoogleTest helpers shared by the test binaries.
//
// GTEST_FLAG_SET was introduced after the 1.11 release line; toolchains
// that ship an older libgtest (the CI image bundles 1.11) still expose the
// flags through the GTEST_FLAG accessor.  Defining the macro only when it
// is missing keeps every call site identical across gtest versions.
#pragma once

#include <gtest/gtest.h>

#ifndef GTEST_FLAG_SET
#define GTEST_FLAG_SET(name, value) \
  (void)(::testing::GTEST_FLAG(name) = (value))
#endif
