// Tests for job/serialize.h: instance round-trips.
#include "gtest_compat.h"

#include <cstdio>

#include "dag/builders.h"
#include "gen/fifo_adversary.h"
#include "gen/random_trees.h"
#include "job/serialize.h"
#include "sched/fifo.h"
#include "sim/engine.h"

namespace otsched {
namespace {

bool SameInstance(const Instance& a, const Instance& b) {
  if (a.job_count() != b.job_count()) return false;
  for (JobId i = 0; i < a.job_count(); ++i) {
    const Job& ja = a.job(i);
    const Job& jb = b.job(i);
    if (ja.release() != jb.release()) return false;
    if (ja.dag().node_count() != jb.dag().node_count()) return false;
    if (ja.dag().edge_count() != jb.dag().edge_count()) return false;
    for (NodeId v = 0; v < ja.dag().node_count(); ++v) {
      std::vector<NodeId> ca(ja.dag().children(v).begin(),
                             ja.dag().children(v).end());
      std::vector<NodeId> cb(jb.dag().children(v).begin(),
                             jb.dag().children(v).end());
      std::sort(ca.begin(), ca.end());
      std::sort(cb.begin(), cb.end());
      if (ca != cb) return false;
    }
  }
  return true;
}

TEST(InstanceSerialize, RoundTripBasic) {
  Instance instance;
  instance.add_job(Job(MakeChain(3), 0, "alpha"));
  instance.add_job(Job(MakeStar(4), 7, "beta"));
  instance.set_name("basic pair");
  const Instance loaded = InstanceFromText(InstanceToText(instance));
  EXPECT_TRUE(SameInstance(instance, loaded));
  EXPECT_EQ(loaded.name(), "basic pair");
  EXPECT_EQ(loaded.job(0).name(), "alpha");
}

TEST(InstanceSerialize, RoundTripRandomWorkload) {
  Rng rng(5);
  Instance instance;
  for (int i = 0; i < 12; ++i) {
    instance.add_job(Job(MakeTree(static_cast<TreeFamily>(i % 4), 40, rng),
                         3 * i));
  }
  EXPECT_TRUE(SameInstance(instance,
                           InstanceFromText(InstanceToText(instance))));
}

TEST(InstanceSerialize, RoundTripPreservesSchedulerBehaviour) {
  // The real contract: a replayed instance produces identical flows.
  LowerBoundSimOptions options;
  options.m = 4;
  options.num_jobs = 10;
  const AdversarialInstance adv = MakeAdversarialInstance(options);
  const Instance loaded =
      InstanceFromText(InstanceToText(adv.instance));

  FifoScheduler a;
  FifoScheduler b;
  EXPECT_EQ(Simulate(adv.instance, 4, a).flows.max_flow,
            Simulate(loaded, 4, b).flows.max_flow);
}

TEST(InstanceSerialize, FileRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/otsched_instance_test.txt";
  Instance instance;
  instance.add_job(Job(MakeCompleteTree(2, 3), 2));
  SaveInstance(instance, path);
  const Instance loaded = LoadInstance(path);
  EXPECT_TRUE(SameInstance(instance, loaded));
  std::remove(path.c_str());
}

TEST(InstanceSerialize, CommentsAndBlanksIgnored) {
  const std::string text =
      "# a comment\notsched-instance-v1\n\nname demo\n"
      "job 3 2 j0  # header comment\n0 1\nend\n";
  const Instance loaded = InstanceFromText(text);
  EXPECT_EQ(loaded.job_count(), 1);
  EXPECT_EQ(loaded.job(0).release(), 3);
  EXPECT_EQ(loaded.job(0).work(), 2);
}

TEST(InstanceSerializeDeath, BadMagicRejected) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(InstanceFromText("bogus-header\n"), "magic");
}

TEST(InstanceSerializeDeath, UnterminatedJobRejected) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(InstanceFromText("otsched-instance-v1\njob 0 2\n0 1\n"),
               "unterminated");
}

}  // namespace
}  // namespace otsched
