// Tests for the observability layer: the RunObserver hook contract
// (sim/observer.h), the standard sinks (sim/observers.h), the metrics
// registry (common/metrics.h), and the instrumented batch runner.
#include "gtest_compat.h"

#include <sstream>

#include "advsim/adaptive.h"
#include "analysis/ratio.h"
#include "analysis/sweep.h"
#include "common/metrics.h"
#include "dag/builders.h"
#include "gen/arrivals.h"
#include "gen/random_trees.h"
#include "sched/fifo.h"
#include "sched/registry.h"
#include "sim/batch_runner.h"
#include "sim/engine.h"
#include "sim/observers.h"
#include "sim/trace.h"

namespace otsched {
namespace {

Instance MixedInstance(std::uint64_t seed, int jobs) {
  Rng rng(seed);
  return MakePoissonArrivals(
      jobs, 0.25,
      [](std::int64_t i, Rng& r) {
        return MakeTree(static_cast<TreeFamily>(i % 4),
                        static_cast<NodeId>(6 + r.next_below(18)), r);
      },
      rng);
}

/// Records every hook as a typed event for ordering assertions.
class OrderingObserver final : public RunObserver {
 public:
  enum Kind { kBegin, kSlot, kArrive, kPick, kExec, kDone, kFinish };
  struct Event {
    Kind kind;
    Time slot;
    JobId job;
  };

  void on_run_begin(const EngineBackend&) override {
    events_.push_back({kBegin, 0, kInvalidJob});
  }
  void on_slot_begin(Time slot, const EngineBackend&) override {
    events_.push_back({kSlot, slot, kInvalidJob});
  }
  void on_arrival(Time slot, JobId job) override {
    events_.push_back({kArrive, slot, job});
  }
  void on_pick(Time slot, const EngineBackend&, std::span<const SubjobRef>,
               double pick_seconds) override {
    EXPECT_GE(pick_seconds, 0.0);
    events_.push_back({kPick, slot, kInvalidJob});
  }
  void on_execute(Time slot, SubjobRef ref) override {
    events_.push_back({kExec, slot, ref.job});
  }
  void on_complete(Time slot, JobId job) override {
    events_.push_back({kDone, slot, job});
  }
  void on_finish(const SimResult&) override {
    events_.push_back({kFinish, 0, kInvalidJob});
  }

  const std::vector<Event>& events() const { return events_; }

 private:
  std::vector<Event> events_;
};

TEST(ObserverHooks, FireInTheDocumentedOrder) {
  const Instance instance = MixedInstance(2024, 8);
  FifoScheduler fifo;
  OrderingObserver observer;
  RunContext context;
  context.observer = &observer;
  const SimResult result = Simulate(instance, 3, fifo, context);

  const auto& events = observer.events();
  ASSERT_FALSE(events.empty());
  // Exactly one begin (first) and one finish (last).
  EXPECT_EQ(events.front().kind, OrderingObserver::kBegin);
  EXPECT_EQ(events.back().kind, OrderingObserver::kFinish);
  for (std::size_t i = 1; i + 1 < events.size(); ++i) {
    EXPECT_NE(events[i].kind, OrderingObserver::kBegin);
    EXPECT_NE(events[i].kind, OrderingObserver::kFinish);
  }

  // Per slot: slot_begin, then arrivals, then exactly one pick, then
  // executes, then completes — never interleaved out of phase.
  Time slot = 0;
  int phase = 0;  // 0=slot_begin 1=arrivals 2=pick 3=executes 4=completes
  int picks_this_slot = 0;
  for (std::size_t i = 1; i + 1 < events.size(); ++i) {
    const auto& e = events[i];
    switch (e.kind) {
      case OrderingObserver::kSlot:
        EXPECT_GT(e.slot, slot) << "slots must advance strictly";
        slot = e.slot;
        phase = 0;
        picks_this_slot = 0;
        break;
      case OrderingObserver::kArrive:
        EXPECT_EQ(e.slot, slot);
        EXPECT_LE(phase, 1) << "arrival after pick at slot " << slot;
        phase = 1;
        break;
      case OrderingObserver::kPick:
        EXPECT_EQ(e.slot, slot);
        EXPECT_LE(phase, 1) << "second pick in slot " << slot;
        EXPECT_EQ(++picks_this_slot, 1);
        phase = 2;
        break;
      case OrderingObserver::kExec:
        EXPECT_EQ(e.slot, slot);
        EXPECT_GE(phase, 2) << "execute before pick at slot " << slot;
        EXPECT_LE(phase, 3) << "execute after complete at slot " << slot;
        phase = 3;
        break;
      case OrderingObserver::kDone:
        EXPECT_EQ(e.slot, slot);
        EXPECT_GE(phase, 3) << "complete before any execute at slot "
                            << slot;
        phase = 4;
        break;
      default:
        FAIL() << "unexpected event kind mid-run";
    }
  }

  // Arrival slots honour the release+1 convention; every job arrives and
  // completes exactly once.
  std::vector<int> arrived(static_cast<std::size_t>(instance.job_count()), 0);
  std::vector<int> completed(static_cast<std::size_t>(instance.job_count()),
                             0);
  for (const auto& e : observer.events()) {
    if (e.kind == OrderingObserver::kArrive) {
      ++arrived[static_cast<std::size_t>(e.job)];
      EXPECT_EQ(e.slot, instance.job(e.job).release() + 1);
    }
    if (e.kind == OrderingObserver::kDone) {
      ++completed[static_cast<std::size_t>(e.job)];
      EXPECT_EQ(e.slot, result.flows.completion[static_cast<std::size_t>(
                            e.job)]);
    }
  }
  for (JobId id = 0; id < instance.job_count(); ++id) {
    EXPECT_EQ(arrived[static_cast<std::size_t>(id)], 1) << "job " << id;
    EXPECT_EQ(completed[static_cast<std::size_t>(id)], 1) << "job " << id;
  }
}

TEST(ObserverHooks, StreamingTraceMatchesDeriveTraceForAllPolicies) {
  const Instance instance = MixedInstance(77, 6);
  for (const PolicySpec& spec : AllPolicies()) {
    for (int m : {2, 4}) {
      if (!PolicyApplies(spec, instance.all_out_forests(),
                         /*semi_batched_certified=*/false, m)) {
        continue;
      }
      auto scheduler = spec.make(5);
      EventTrace streamed;
      StreamingTraceObserver tracer(streamed);
      RunContext context;
      context.observer = &tracer;
      const SimResult result = Simulate(instance, m, *scheduler, context);
      EXPECT_EQ(FirstDivergence(streamed,
                                DeriveTrace(result.full_schedule(), instance)),
                -1)
          << spec.name << " m=" << m;
    }
  }
}

TEST(ObserverHooks, AdaptiveEngineStreamsTheSameTrace) {
  AdaptiveAdversaryOptions options;
  options.m = 3;
  options.num_jobs = 5;
  FifoScheduler fifo;
  EventTrace streamed;
  StreamingTraceObserver tracer(streamed);
  OrderingObserver recorder;
  ObserverList observers;
  observers.add(&tracer);
  observers.add(&recorder);
  RunContext context;
  context.observer = &observers;
  const AdaptiveAdversaryResult result =
      RunAdaptiveAdversary(fifo, options, context);
  // The adversary materializes the instance it played; the streamed trace
  // must agree with the canonical derivation over that instance.
  EXPECT_EQ(
      FirstDivergence(streamed, DeriveTrace(result.full_schedule(), result.instance)),
      -1);
  ASSERT_FALSE(recorder.events().empty());
  EXPECT_EQ(recorder.events().front().kind, OrderingObserver::kBegin);
  EXPECT_EQ(recorder.events().back().kind, OrderingObserver::kFinish);
}

TEST(ObserverList, FansOutInOrderAndSkipsNull) {
  std::vector<int> order;
  class Tag final : public RunObserver {
   public:
    Tag(std::vector<int>& order, int id) : order_(order), id_(id) {}
    void on_arrival(Time, JobId) override { order_.push_back(id_); }

   private:
    std::vector<int>& order_;
    int id_;
  };
  Tag first(order, 1);
  Tag second(order, 2);
  ObserverList list;
  EXPECT_TRUE(list.empty());
  list.add(nullptr);
  EXPECT_TRUE(list.empty());
  list.add(&first);
  list.add(&second);
  EXPECT_FALSE(list.empty());
  list.on_arrival(1, 0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ---- metrics registry ----

TEST(MetricsRegistry, CountersGaugesHistogramsSeries) {
  MetricsRegistry registry;
  registry.counter("c").inc();
  registry.counter("c").inc(4);
  EXPECT_EQ(registry.counter("c").value(), 5);

  Gauge& g = registry.gauge("g");
  g.set(2.0);
  g.set(8.0);
  g.set(5.0);
  EXPECT_EQ(g.last(), 5.0);
  EXPECT_EQ(g.min(), 2.0);
  EXPECT_EQ(g.max(), 8.0);
  EXPECT_EQ(g.mean(), 5.0);
  EXPECT_EQ(g.count(), 3);

  Histogram& h = registry.histogram("h", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(100.0);  // overflow bucket
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::int64_t>{1, 1, 1}));
  EXPECT_EQ(h.count(), 3);

  Series& s = registry.series("s");
  s.record(1, 10);
  s.record(4, 20);
  EXPECT_EQ(s.slots(), (std::vector<std::int64_t>{1, 4}));
  EXPECT_EQ(s.values(), (std::vector<std::int64_t>{10, 20}));
}

TEST(MetricsRegistry, MergeSumsCountersPoolsGaugesAndAlignsSeries) {
  MetricsRegistry a;
  a.counter("n").set(3);
  a.gauge("g").set(1.0);
  a.histogram("h", {2.0}).observe(1.0);
  a.series("s").record(1, 5);
  a.series("s").record(2, 5);

  MetricsRegistry b;
  b.counter("n").set(4);
  b.gauge("g").set(9.0);
  b.histogram("h", {2.0}).observe(3.0);
  b.series("s").record(2, 7);
  b.series("s").record(3, 7);

  a.merge_from(b);
  EXPECT_EQ(a.counter("n").value(), 7);
  EXPECT_EQ(a.gauge("g").min(), 1.0);
  EXPECT_EQ(a.gauge("g").max(), 9.0);
  EXPECT_EQ(a.gauge("g").count(), 2);
  EXPECT_EQ(a.histogram("h", {}).count(), 2);
  EXPECT_EQ(a.series("s").slots(), (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(a.series("s").values(), (std::vector<std::int64_t>{5, 12, 7}));
}

TEST(MetricsRegistryDeath, CrossKindNameCollisionAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_DEATH(registry.gauge("x"), "another kind");
  MetricsRegistry bounds;
  bounds.histogram("h", {1.0, 2.0});
  EXPECT_DEATH(bounds.histogram("h", {1.0, 3.0}), "different");
}

TEST(MetricsRegistry, JsonIsDeterministicAndSchemaShaped) {
  auto build = [] {
    MetricsRegistry registry;
    registry.set_manifest("policy", std::string("fifo"));
    registry.set_manifest("m", std::int64_t{4});
    registry.counter("runs").inc(2);
    registry.gauge("width").set(3.5);
    registry.histogram("flow", {1.0, 2.0}).observe(1.5);
    registry.series("busy").record(1, 4);
    return registry.to_json();
  };
  const std::string json = build();
  EXPECT_EQ(json, build());
  for (const char* needle :
       {"\"schema_version\": 1", "\"manifest\"", "\"counters\"", "\"gauges\"",
        "\"histograms\"", "\"series\"", "\"runs\": 2", "\"policy\": \"fifo\"",
        "\"le\": [1, 2]", "\"slots\": [1]"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

TEST(MetricsRegistry, ToJsonCachedServesCachedBytesUntilTouched) {
  // The /metrics regression: an idle daemon polls to_json_cached() over
  // and over; only mutations (the generation counter) may trigger a
  // re-render.
  MetricsRegistry registry;
  registry.set_manifest("policy", std::string("fifo"));
  registry.counter("jobs").inc(3);

  const std::string first = registry.to_json_cached();  // copy: the
  // cached buffer itself is reused across re-renders.
  EXPECT_EQ(registry.json_renders(), 1);
  EXPECT_EQ(first, registry.to_json());

  // Idle polls: same bytes, no further renders.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(registry.to_json_cached(), first);
    EXPECT_EQ(registry.json_renders(), 1) << "poll " << i;
  }

  // Any mutation through the registry accessors bumps the generation and
  // the next poll re-renders exactly once.
  registry.counter("jobs").inc();
  EXPECT_EQ(registry.json_renders(), 1);  // lazily re-rendered, not eagerly
  const std::string after = registry.to_json_cached();
  EXPECT_EQ(registry.json_renders(), 2);
  EXPECT_NE(after, first);
  EXPECT_NE(after.find("\"jobs\": 4"), std::string::npos);
  registry.to_json_cached();
  EXPECT_EQ(registry.json_renders(), 2);

  // set_manifest and the other accessor kinds dirty the cache too.
  registry.set_manifest("m", std::int64_t{8});
  registry.to_json_cached();
  EXPECT_EQ(registry.json_renders(), 3);
  registry.gauge("width");
  registry.to_json_cached();
  EXPECT_EQ(registry.json_renders(), 4);

  // Handle-writers bypass the registry, so tick code that mutates
  // through a kept handle must call touch() — the documented contract.
  Counter& handle = registry.counter("jobs");  // accessor: dirties
  registry.to_json_cached();
  EXPECT_EQ(registry.json_renders(), 5);
  handle.inc();             // invisible to the generation counter...
  registry.touch();         // ...until touch()
  registry.to_json_cached();
  EXPECT_EQ(registry.json_renders(), 6);
}

// ---- MetricsObserver golden run ----

TEST(MetricsObserver, TinyRunMatchesHandComputedRegistry) {
  // Two single-node jobs released at 0 and 1 on one processor: every
  // metric is computable by hand, so the full JSON document is a golden
  // artifact built from first principles rather than a checked-in blob.
  Instance instance;
  instance.add_job(Job(MakeChain(1), 0));
  instance.add_job(Job(MakeChain(1), 1));
  FifoScheduler fifo;

  MetricsRegistry got;
  MetricsObserver::Options options;
  options.record_pick_times = false;  // the one nondeterministic metric
  MetricsObserver observer(got, options);
  RunContext context;
  context.observer = &observer;
  const SimResult result = Simulate(instance, 1, fifo, context);
  ASSERT_EQ(result.stats.horizon, 2);
  ASSERT_EQ(result.flows.max_flow, 1);

  MetricsRegistry want;
  want.counter("observer.arrivals").set(2);
  want.counter("observer.completions").set(2);
  want.counter("observer.executes").set(2);
  want.counter("observer.picks").set(2);
  want.counter("observer.slots_visited").set(2);
  want.counter("engine.busy_slots").set(2);
  want.counter("engine.executed_subjobs").set(2);
  want.counter("engine.idle_processor_slots").set(0);
  want.counter("flow.total_slots").set(2);
  // Fault-free run: the fault counters exist but stay at zero.
  want.counter("faults.capacity_changes").set(0);
  want.counter("faults.faulted_slots").set(0);
  want.counter("faults.capacity_shortfall").set(0);
  // Job faults off: the rollback/checkpoint counters exist but stay zero.
  want.counter("faults.rollbacks").set(0);
  want.counter("faults.checkpoints").set(0);
  want.counter("work.wasted_slots").set(0);
  want.gauge("engine.horizon").set(2.0);
  want.gauge("flow.max").set(1.0);
  want.gauge("alive.width").set(1.0);
  want.gauge("alive.width").set(1.0);
  want.gauge("ready.width").set(1.0);
  want.gauge("ready.width").set(1.0);
  want.gauge("utilization.mean").set(1.0);
  std::vector<double> flow_bounds;
  for (int p = 0; p <= 20; ++p) {
    flow_bounds.push_back(static_cast<double>(std::int64_t{1} << p));
  }
  Histogram& flow_hist = want.histogram("flow.slots", flow_bounds);
  flow_hist.observe(1.0);
  flow_hist.observe(1.0);
  want.series("slot.busy").record(1, 1);
  want.series("slot.busy").record(2, 1);
  want.series("slot.idle").record(1, 0);
  want.series("slot.idle").record(2, 0);
  want.series("slot.ready_width").record(1, 1);
  want.series("slot.ready_width").record(2, 1);
  want.series("slot.alive").record(1, 1);
  want.series("slot.alive").record(2, 1);
  want.series("slot.capacity");  // declared but empty: capacity never changed
  want.series("work.committed_frontier");  // empty: job faults off

  EXPECT_EQ(got.to_json(), want.to_json());
}

TEST(MetricsObserver, FiguresMatchSimStatsAndFlowSummary) {
  const Instance instance = MixedInstance(11, 7);
  FifoScheduler fifo;
  MetricsRegistry registry;
  MetricsObserver observer(registry);
  RunContext context;
  context.observer = &observer;
  const SimResult result = Simulate(instance, 3, fifo, context);

  EXPECT_EQ(registry.counter("engine.idle_processor_slots").value(),
            result.stats.idle_processor_slots);
  EXPECT_EQ(registry.counter("engine.busy_slots").value(),
            result.stats.busy_slots);
  EXPECT_EQ(registry.counter("engine.executed_subjobs").value(),
            result.stats.executed_subjobs);
  EXPECT_EQ(registry.gauge("engine.horizon").last(),
            static_cast<double>(result.stats.horizon));
  EXPECT_EQ(registry.gauge("flow.max").last(),
            static_cast<double>(result.flows.max_flow));
  // Streamed counters cross-check the authoritative figures.
  EXPECT_EQ(registry.counter("observer.executes").value(),
            result.stats.executed_subjobs);
  EXPECT_EQ(registry.counter("observer.slots_visited").value(),
            result.stats.busy_slots);
  Time total_flow = 0;
  for (Time f : result.flows.flow) total_flow += f;
  EXPECT_EQ(registry.counter("flow.total_slots").value(), total_flow);
  EXPECT_EQ(registry.histogram("flow.slots", {}).count(),
            instance.job_count());
  // Pick timing is on by default and saw one observation per visited slot.
  EXPECT_EQ(registry.histogram("pick.seconds", {}).count(),
            registry.counter("observer.picks").value());
}

// ---- manifest ----

TEST(RunManifest, FingerprintIsStableAndSensitive) {
  const Instance a = MixedInstance(5, 4);
  const Instance b = MixedInstance(6, 4);
  EXPECT_EQ(FingerprintInstance(a), FingerprintInstance(a));
  EXPECT_NE(FingerprintInstance(a), FingerprintInstance(b));
}

TEST(RunManifest, CarriesRunProvenance) {
  const Instance instance = MixedInstance(5, 4);
  SimOptions options;
  options.max_horizon = 500;
  options.clairvoyance = ClairvoyanceOverride::kDeny;
  const RunManifest manifest =
      MakeRunManifest(instance, 4, "fifo/first-ready", 99, options);
  EXPECT_EQ(manifest.jobs, instance.job_count());
  EXPECT_EQ(manifest.total_work, instance.total_work());
  EXPECT_EQ(manifest.m, 4);
  EXPECT_EQ(manifest.seed, 99u);
  EXPECT_EQ(manifest.max_horizon, 500);
  EXPECT_EQ(manifest.clairvoyance, "deny");
  EXPECT_EQ(manifest.instance_hash.size(), 16u);

  const std::string json = manifest.to_json();
  for (const char* needle :
       {"\"policy\": \"fifo/first-ready\"", "\"m\": 4", "\"seed\": 99",
        "\"clairvoyance\": \"deny\"", manifest.instance_hash.c_str()}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }

  MetricsRegistry registry;
  WriteManifest(registry, manifest);
  const std::string metrics_json = registry.to_json();
  EXPECT_NE(metrics_json.find("\"instance_hash\""), std::string::npos);
  EXPECT_NE(metrics_json.find(manifest.instance_hash), std::string::npos);
}

// ---- instrumented batches ----

TEST(BatchRunner, InstrumentedAggregateIsWorkerCountInvariant) {
  const Instance instance = MixedInstance(321, 6);
  std::vector<std::pair<const Instance*, int>> cells;
  for (int m : {2, 3}) {
    for (int s = 0; s < 3; ++s) cells.emplace_back(&instance, m);
  }
  MetricsObserver::Options options;
  options.record_pick_times = false;
  auto run_with_workers = [&](std::size_t workers) {
    const BatchRunner runner(workers);
    const auto runs = runner.RunInstrumentedSimulations(
        cells,
        [&](std::size_t i) {
          return MakePolicy("fifo/random", static_cast<std::uint64_t>(i % 3),
                            0);
        },
        SimOptions{}, options);
    return MergedMetrics(runs).to_json();
  };
  const std::string inline_run = run_with_workers(0);
  EXPECT_EQ(inline_run, run_with_workers(1));
  EXPECT_EQ(inline_run, run_with_workers(3));
}

TEST(MeasureRatio, RunContextOverloadFiresObservers) {
  const Instance instance = MixedInstance(9, 5);
  FifoScheduler fifo;
  MetricsRegistry registry;
  MetricsObserver observer(registry);
  RunContext context;
  context.observer = &observer;
  const RatioMeasurement r = MeasureRatio(instance, 2, fifo, 0, context);
  EXPECT_EQ(registry.counter("engine.idle_processor_slots").value(),
            r.sim_stats.idle_processor_slots);
  EXPECT_EQ(registry.gauge("flow.max").last(),
            static_cast<double>(r.max_flow));
}

}  // namespace
}  // namespace otsched
