// Tests for core/lpf.h: Lemma 5.3 / Corollary 5.4 optimality, the
// alpha-competitiveness of LPF[m/alpha], and the Lemma 5.2 / Figure 2
// head/tail shape.
#include <gtest/gtest.h>

#include "core/lpf.h"
#include "dag/builders.h"
#include "dag/validate.h"
#include "gen/random_trees.h"
#include "opt/brute_force.h"
#include "opt/single_batch.h"
#include "sim/validator.h"

namespace otsched {
namespace {

TEST(Lpf, ChainTakesSpanSlots) {
  const JobSchedule s = BuildLpfSchedule(MakeChain(6), 3);
  EXPECT_EQ(s.length(), 6);
  EXPECT_EQ(s.total(), 6);
  EXPECT_TRUE(CheckJobSchedule(MakeChain(6), s).empty());
}

TEST(Lpf, BlobPacksDensely) {
  const JobSchedule s = BuildLpfSchedule(MakeParallelBlob(10), 4);
  EXPECT_EQ(s.length(), 3);  // 4 + 4 + 2
  EXPECT_EQ(s.load(1), 4);
  EXPECT_EQ(s.load(2), 4);
  EXPECT_EQ(s.load(3), 2);
}

TEST(Lpf, EmptyDag) {
  const JobSchedule s = BuildLpfSchedule(Dag(), 2);
  EXPECT_EQ(s.length(), 0);
  EXPECT_EQ(s.last_underfull_slot(), kNoTime);
}

TEST(Lpf, PrioritizesTallerSubtrees) {
  // Root with two children: one leaf, one chain of 3.  On p=1, after the
  // root LPF must follow the chain before the leaf.
  Dag::Builder builder(5);
  builder.add_edge(0, 1);        // leaf child
  builder.add_edge(0, 2);        // chain child
  builder.add_edge(2, 3);
  builder.add_edge(3, 4);
  const Dag tree = std::move(builder).build();
  const JobSchedule s = BuildLpfSchedule(tree, 1);
  EXPECT_EQ(s.slot_of[2], 2);
  EXPECT_EQ(s.slot_of[3], 3);
  EXPECT_EQ(s.slot_of[4], 4);
  EXPECT_EQ(s.slot_of[1], 5);  // the shallow leaf goes last
}

TEST(Lpf, SchedulerChecksCatchBrokenSchedules) {
  const Dag chain = MakeChain(3);
  JobSchedule broken = BuildLpfSchedule(chain, 1);
  std::swap(broken.slots[0], broken.slots[2]);  // reverse the chain order
  broken.slot_of[0] = 3;
  broken.slot_of[2] = 1;
  EXPECT_FALSE(CheckJobSchedule(chain, broken).empty());
}

// ---- Lemma 5.3 / Corollary 5.4: LPF optimality sweep ----

struct LpfCase {
  TreeFamily family;
  int size;
  int m;
  std::uint64_t seed;
};

class LpfOptimalityTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LpfOptimalityTest, MatchesCorollary54OnFullMachine) {
  const auto [family_index, m, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 1000003 + m);
  const auto family = static_cast<TreeFamily>(family_index);
  const Dag tree = MakeTree(family, 120, rng);
  ASSERT_TRUE(IsOutTree(tree));

  const Time opt = SingleBatchOpt(tree, m);
  const JobSchedule s = BuildLpfSchedule(tree, m);
  EXPECT_TRUE(CheckJobSchedule(tree, s).empty());
  // Lemma 5.3: LPF on the full machine achieves exactly OPT.
  EXPECT_EQ(s.length(), opt)
      << ToString(family) << " m=" << m << " seed=" << seed;
}

TEST_P(LpfOptimalityTest, AlphaCompetitiveOnReducedMachine) {
  const auto [family_index, m, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + m);
  const auto family = static_cast<TreeFamily>(family_index);
  const Dag tree = MakeTree(family, 200, rng);

  // When alpha does not divide m the algorithm rounds the budget UP to
  // ceil(m/alpha) >= m/alpha processors, which only shortens the schedule,
  // so the alpha-competitiveness bound survives unchanged.
  const Time opt = SingleBatchOpt(tree, m);
  const JobSchedule s = BuildLpfSchedule(tree, (m + 3) / 4);
  EXPECT_TRUE(CheckJobSchedule(tree, s).empty());
  EXPECT_LE(s.length(), 4 * opt);
}

TEST_P(LpfOptimalityTest, Lemma52ChainStructureHolds) {
  const auto [family_index, m, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 31 + m);
  const auto family = static_cast<TreeFamily>(family_index);
  const Dag tree = MakeTree(family, 150, rng);

  const int p = std::max(1, m / 4);
  const JobSchedule s = BuildLpfSchedule(tree, p);
  const Lemma52Report report = CheckLemma52(tree, s);
  EXPECT_TRUE(report.holds) << report.detail;
  if (report.last_underfull != kNoTime) {
    // Lemma 5.2 forces the last underfull slot to be at most the max
    // depth, hence at most OPT on the full machine.
    EXPECT_LE(report.last_underfull, SingleBatchOpt(tree, m));
  }
}

TEST_P(LpfOptimalityTest, HeadTailRectangle) {
  const auto [family_index, m, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 271 + m);
  const auto family = static_cast<TreeFamily>(family_index);
  const Dag tree = MakeTree(family, 240, rng);

  // p = ceil(m/alpha) generalizes the alpha | m case: Lemma 5.2 bounds the
  // last underfull slot by the max depth <= OPT for ANY budget, and with
  // p >= m/alpha the packed tail still fits in (alpha - 1) * OPT slots.
  const Time opt = SingleBatchOpt(tree, m);
  const JobSchedule s = BuildLpfSchedule(tree, (m + 3) / 4);
  const HeadTailShape shape = AnalyzeHeadTail(s, opt);
  // Figure 2: the tail is a fully packed rectangle (no underfull slot
  // strictly inside it) of length at most (alpha - 1) * OPT.
  EXPECT_TRUE(shape.underfull_tail_slots.empty());
  EXPECT_LE(shape.tail_len, 3 * opt);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LpfOptimalityTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),  // TreeFamily
                       ::testing::Values(2, 4, 8, 16),
                       ::testing::Values(1, 2, 3)));

TEST(Lpf, MatchesBruteForceOnTinyForests) {
  // Corollary 5.4 == true OPT, certified by exhaustive search.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const Dag forest = MakeRandomForest(12, 3, 0.5, rng);
    Instance instance;
    instance.add_job(Job(Dag(forest), 0));
    for (int m : {1, 2, 3}) {
      EXPECT_EQ(SingleBatchOpt(forest, m), BruteForceOpt(instance, m))
          << "seed " << seed << " m " << m;
    }
  }
}

TEST(Lpf, OutForestInputSupported) {
  Rng rng(5);
  const Dag forest = MakeRandomForest(60, 4, 0.3, rng);
  const Time opt = SingleBatchOpt(forest, 4);
  const JobSchedule s = BuildLpfSchedule(forest, 4);
  EXPECT_EQ(s.length(), opt);
}

// ---- GlobalLpfScheduler ----

TEST(GlobalLpf, FeasibleOnMixedInstance) {
  Rng rng(17);
  Instance instance;
  for (int i = 0; i < 6; ++i) {
    instance.add_job(Job(MakeTree(TreeFamily::kMixed, 40, rng), i * 3));
  }
  GlobalLpfScheduler scheduler;
  const SimResult result = Simulate(instance, 4, scheduler);
  const auto report = ValidateSchedule(result.full_schedule(), instance);
  EXPECT_TRUE(report.feasible) << report.violation;
}

TEST(GlobalLpf, SingleJobMatchesBuildLpfLength) {
  Rng rng(23);
  const Dag tree = MakeTree(TreeFamily::kBranchy, 90, rng);
  Instance instance;
  instance.add_job(Job(Dag(tree), 0));
  GlobalLpfScheduler scheduler;
  const SimResult result = Simulate(instance, 3, scheduler);
  EXPECT_EQ(result.flows.max_flow, BuildLpfSchedule(tree, 3).length());
}

}  // namespace
}  // namespace otsched
