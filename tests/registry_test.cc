// Tests for sched/registry.h — the single policy-construction API: name
// lookup, legacy-rename diagnostics, listing, applicability gating, and
// that every spec actually constructs a runnable scheduler.
#include "gtest_compat.h"

#include <set>
#include <string_view>
#include <utility>

#include "dag/builders.h"
#include "sched/registry.h"

namespace otsched {
namespace {

TEST(Registry, NamesAreUniqueAndListed) {
  const std::vector<std::string> names = ListPolicyNames();
  EXPECT_EQ(names.size(), AllPolicies().size());
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
  EXPECT_TRUE(unique.count("fifo/first-ready"));
  EXPECT_TRUE(unique.count("alg-a/general"));
  EXPECT_TRUE(unique.count("alg-a/semi-batched"));
}

TEST(Registry, LegacySpellingsAreRejected) {
  // The PR-3 aliases were removed: FindPolicy/MakePolicy accept registry
  // names only.
  for (const char* legacy : {"fifo", "fifo-random", "fifo-lpf", "equi",
                             "srpt", "alg-a", "alg-a-semibatched"}) {
    EXPECT_EQ(FindPolicy(legacy), nullptr) << legacy;
    EXPECT_EQ(MakePolicy(legacy), nullptr) << legacy;
  }
  EXPECT_EQ(FindPolicy("no-such-policy"), nullptr);
  EXPECT_EQ(MakePolicy("no-such-policy"), nullptr);
}

TEST(Registry, LegacyPolicyAliasMapsEveryRename) {
  // Diagnostics only: the mapping names the replacement, and every
  // replacement is a real registry entry.
  const std::pair<const char*, const char*> renames[] = {
      {"fifo", "fifo/first-ready"},
      {"fifo-random", "fifo/random"},
      {"fifo-lpf", "fifo/lpf-height"},
      {"equi", "round-robin-equi"},
      {"srpt", "remaining-work/smallest"},
      {"alg-a", "alg-a/general"},
      {"alg-a-semibatched", "alg-a/semi-batched"},
  };
  for (const auto& [legacy, current] : renames) {
    const char* mapped = LegacyPolicyAlias(legacy);
    ASSERT_NE(mapped, nullptr) << legacy;
    EXPECT_EQ(std::string_view(mapped), current) << legacy;
    EXPECT_NE(FindPolicy(mapped), nullptr) << mapped;
  }
  EXPECT_EQ(LegacyPolicyAlias("fifo/first-ready"), nullptr);
  EXPECT_EQ(LegacyPolicyAlias("no-such-policy"), nullptr);
}

TEST(Registry, EverySpecConstructsARunnableScheduler) {
  Instance instance;
  instance.add_job(Job(MakeChain(3), 0));
  instance.add_job(Job(MakeStar(3), 1));
  for (const PolicySpec& spec : AllPolicies()) {
    // Semi-batched Algorithm A needs a certified instance; constructing it
    // is still exercised via the factory.
    std::unique_ptr<Scheduler> scheduler =
        spec.needs_semi_batched ? spec.make_semi_batched(2) : spec.make(7);
    ASSERT_NE(scheduler, nullptr) << spec.name;
    EXPECT_FALSE(scheduler->name().empty()) << spec.name;
    EXPECT_FALSE(spec.description.empty()) << spec.name;
    if (PolicyApplies(spec, instance.all_out_forests(),
                      /*semi_batched_certified=*/false, /*m=*/2)) {
      const SimResult result = Simulate(instance, 2, *scheduler);
      EXPECT_TRUE(result.flows.all_completed) << spec.name;
    }
  }
}

TEST(Registry, MakePolicyBuildsFromCanonicalNames) {
  Instance instance;
  instance.add_job(Job(MakeChain(4), 0));
  instance.add_job(Job(MakeStar(4), 0));
  auto policy = MakePolicy("fifo/first-ready", 3);
  ASSERT_NE(policy, nullptr);
  const SimResult result = Simulate(instance, 2, *policy);
  EXPECT_TRUE(result.flows.all_completed);
}

TEST(Registry, PolicyAppliesGatesPreconditions) {
  const PolicySpec* alg_a = FindPolicy("alg-a/general");
  ASSERT_NE(alg_a, nullptr);
  EXPECT_TRUE(PolicyApplies(*alg_a, /*all_out_forests=*/true,
                            /*semi_batched_certified=*/false, /*m=*/4));
  EXPECT_FALSE(PolicyApplies(*alg_a, /*all_out_forests=*/false,
                             /*semi_batched_certified=*/false, /*m=*/4));
  EXPECT_FALSE(PolicyApplies(*alg_a, /*all_out_forests=*/true,
                             /*semi_batched_certified=*/false, /*m=*/6));

  const PolicySpec* semi = FindPolicy("alg-a/semi-batched");
  ASSERT_NE(semi, nullptr);
  EXPECT_FALSE(PolicyApplies(*semi, /*all_out_forests=*/true,
                             /*semi_batched_certified=*/false, /*m=*/4));
  EXPECT_TRUE(PolicyApplies(*semi, /*all_out_forests=*/true,
                            /*semi_batched_certified=*/true, /*m=*/4));
}

}  // namespace
}  // namespace otsched
