// Tests for sched/registry.h — the single policy-construction API: name
// and alias lookup, listing, applicability gating, and that every spec
// actually constructs a runnable scheduler.
#include "gtest_compat.h"

#include <set>

#include "dag/builders.h"
#include "sched/registry.h"

namespace otsched {
namespace {

TEST(Registry, NamesAreUniqueAndListed) {
  const std::vector<std::string> names = ListPolicyNames();
  EXPECT_EQ(names.size(), AllPolicies().size());
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
  EXPECT_TRUE(unique.count("fifo/first-ready"));
  EXPECT_TRUE(unique.count("alg-a/general"));
  EXPECT_TRUE(unique.count("alg-a/semi-batched"));
}

TEST(Registry, AliasesResolveToTheSameSpec) {
  EXPECT_EQ(FindPolicy("fifo"), FindPolicy("fifo/first-ready"));
  EXPECT_EQ(FindPolicy("fifo-random"), FindPolicy("fifo/random"));
  EXPECT_EQ(FindPolicy("fifo-lpf"), FindPolicy("fifo/lpf-height"));
  EXPECT_EQ(FindPolicy("equi"), FindPolicy("round-robin-equi"));
  EXPECT_EQ(FindPolicy("srpt"), FindPolicy("remaining-work/smallest"));
  EXPECT_EQ(FindPolicy("alg-a"), FindPolicy("alg-a/general"));
  EXPECT_EQ(FindPolicy("alg-a-semibatched"),
            FindPolicy("alg-a/semi-batched"));
  EXPECT_EQ(FindPolicy("no-such-policy"), nullptr);
  EXPECT_EQ(MakePolicy("no-such-policy"), nullptr);
}

TEST(Registry, EverySpecConstructsARunnableScheduler) {
  Instance instance;
  instance.add_job(Job(MakeChain(3), 0));
  instance.add_job(Job(MakeStar(3), 1));
  for (const PolicySpec& spec : AllPolicies()) {
    // Semi-batched Algorithm A needs a certified instance; constructing it
    // is still exercised via the factory.
    std::unique_ptr<Scheduler> scheduler =
        spec.needs_semi_batched ? spec.make_semi_batched(2) : spec.make(7);
    ASSERT_NE(scheduler, nullptr) << spec.name;
    EXPECT_FALSE(scheduler->name().empty()) << spec.name;
    EXPECT_FALSE(spec.description.empty()) << spec.name;
    if (PolicyApplies(spec, instance.all_out_forests(),
                      /*semi_batched_certified=*/false, /*m=*/2)) {
      const SimResult result = Simulate(instance, 2, *scheduler);
      EXPECT_TRUE(result.flows.all_completed) << spec.name;
    }
  }
}

TEST(Registry, MakePolicyRunsAliasesIdenticallyToCanonicalNames) {
  Instance instance;
  instance.add_job(Job(MakeChain(4), 0));
  instance.add_job(Job(MakeStar(4), 0));
  auto canonical = MakePolicy("fifo/first-ready", 3);
  auto alias = MakePolicy("fifo", 3);
  const SimResult a = Simulate(instance, 2, *canonical);
  const SimResult b = Simulate(instance, 2, *alias);
  EXPECT_EQ(a.flows.max_flow, b.flows.max_flow);
  EXPECT_EQ(a.stats.horizon, b.stats.horizon);
}

TEST(Registry, PolicyAppliesGatesPreconditions) {
  const PolicySpec* alg_a = FindPolicy("alg-a/general");
  ASSERT_NE(alg_a, nullptr);
  EXPECT_TRUE(PolicyApplies(*alg_a, /*all_out_forests=*/true,
                            /*semi_batched_certified=*/false, /*m=*/4));
  EXPECT_FALSE(PolicyApplies(*alg_a, /*all_out_forests=*/false,
                             /*semi_batched_certified=*/false, /*m=*/4));
  EXPECT_FALSE(PolicyApplies(*alg_a, /*all_out_forests=*/true,
                             /*semi_batched_certified=*/false, /*m=*/6));

  const PolicySpec* semi = FindPolicy("alg-a/semi-batched");
  ASSERT_NE(semi, nullptr);
  EXPECT_FALSE(PolicyApplies(*semi, /*all_out_forests=*/true,
                             /*semi_batched_certified=*/false, /*m=*/4));
  EXPECT_TRUE(PolicyApplies(*semi, /*all_out_forests=*/true,
                            /*semi_batched_certified=*/true, /*m=*/4));
}

}  // namespace
}  // namespace otsched
