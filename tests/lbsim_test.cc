// Tests for lbsim + gen/fifo_adversary: the Section 4 lower bound.
//
// The decisive check is cross-validation: the specialized O(alive)/slot
// co-simulation and the generic engine running FifoScheduler(kAvoidMarked)
// on the materialized instance must produce IDENTICAL per-job flows.
#include <gtest/gtest.h>

#include <cmath>

#include "dag/validate.h"
#include "gen/fifo_adversary.h"
#include "opt/lower_bounds.h"
#include "sched/fifo.h"
#include "sim/validator.h"

namespace otsched {
namespace {

TEST(LbSim, SingleJobAlternatesSublayers) {
  // One job, m=4, 4 layers: slot 1 runs 4 non-keys (layer size 5), slot 2
  // the key, and so on: completion at 2 * layers.
  LowerBoundSimOptions options;
  options.m = 4;
  options.num_jobs = 1;
  const LowerBoundSimResult result = RunLowerBoundSim(options);
  EXPECT_EQ(result.completion[0], 8);
  EXPECT_EQ(result.flow[0], 8);
  for (int size : result.layer_sizes[0]) {
    EXPECT_EQ(size, 5);  // always first-touched with the full machine free
  }
}

TEST(LbSim, LayerSizesRespectAdversaryRule) {
  LowerBoundSimOptions options;
  options.m = 8;
  options.num_jobs = 50;
  const LowerBoundSimResult result = RunLowerBoundSim(options);
  for (const auto& sizes : result.layer_sizes) {
    for (int size : sizes) {
      EXPECT_GE(size, 1);
      EXPECT_LE(size, options.m + 1);
    }
  }
  EXPECT_EQ(result.certified_opt_upper, 9);
}

TEST(LbSim, QueueBuildsAndFlowExceedsOpt) {
  LowerBoundSimOptions options;
  options.m = 64;
  options.num_jobs = 400;
  const LowerBoundSimResult result = RunLowerBoundSim(options);
  // FIFO must fall behind: several jobs alive at once, max flow well
  // above the certified OPT of m+1.
  EXPECT_GT(result.max_alive, 2);
  EXPECT_GT(result.max_flow, 2 * result.certified_opt_upper);
}

TEST(LbSim, Lemma41SublayerGrowth) {
  // While U(t) < lg m - lg lg m, U must strictly grow (Lemma 4.1).
  LowerBoundSimOptions options;
  options.m = 256;
  options.num_jobs = 600;
  const LowerBoundSimResult result = RunLowerBoundSim(options);
  const double lg_m = std::log2(static_cast<double>(options.m));
  const double threshold = lg_m - std::log2(lg_m);
  ASSERT_GE(result.sublayer_trace.size(), 10u);
  // Check growth over the released-jobs prefix (the trace is still in the
  // arrival phase while boundaries < num_jobs).
  for (std::size_t k = 0; k + 1 < result.sublayer_trace.size() &&
                          k + 1 < static_cast<std::size_t>(options.num_jobs);
       ++k) {
    const double u = static_cast<double>(result.sublayer_trace[k]);
    // Lemma 4.1 counts unfinished JOBS via sublayers; the paper's
    // threshold is on job count, each contributing <= 2m sublayers.  Use
    // the conservative reading: if fewer than `threshold` jobs could even
    // exist (u < threshold, i.e. at most that many partially-done jobs),
    // U must grow.
    if (u < threshold && result.sublayer_trace[k] > 0) {
      EXPECT_LT(result.sublayer_trace[k], result.sublayer_trace[k + 1])
          << "boundary " << k;
    }
  }
}

TEST(LbSim, MaxFlowGrowsWithM) {
  // The Theorem 4.2 signal: normalized max flow increases with m.
  double previous_ratio = 0.0;
  for (int m : {8, 32, 128}) {
    LowerBoundSimOptions options;
    options.m = m;
    options.num_jobs = 40 * m;  // enough for the queue to saturate
    const LowerBoundSimResult result = RunLowerBoundSim(options);
    const double ratio =
        static_cast<double>(result.max_flow) /
        static_cast<double>(result.certified_opt_upper);
    EXPECT_GT(ratio, previous_ratio) << "m=" << m;
    previous_ratio = ratio;
  }
  EXPECT_GT(previous_ratio, 3.0);  // demonstrably super-constant
}

TEST(LbSim, CustomLayerCountShortensJobs) {
  LowerBoundSimOptions options;
  options.m = 8;
  options.num_jobs = 20;
  options.layers_per_job = 3;  // instead of the default m
  const LowerBoundSimResult result = RunLowerBoundSim(options);
  for (const auto& sizes : result.layer_sizes) {
    EXPECT_EQ(sizes.size(), 3u);
  }
  EXPECT_EQ(result.opt_lower, 3);  // key-spine span
  // Shorter jobs drain faster: with 3 layers a job needs ~6 slots < gap,
  // so the queue never builds and flows stay near 2 * layers.
  EXPECT_LE(result.max_flow, 2 * 3 + 2);
}

TEST(Adversary, MaterializedInstanceIsOutForestFamily) {
  LowerBoundSimOptions options;
  options.m = 6;
  options.num_jobs = 10;
  const AdversarialInstance adv = MakeAdversarialInstance(options);
  EXPECT_EQ(adv.instance.job_count(), 10);
  EXPECT_TRUE(adv.instance.all_out_forests());
  for (JobId i = 0; i < adv.instance.job_count(); ++i) {
    EXPECT_EQ(adv.instance.job(i).release(), i * 7);
    // Exactly one key per layer.
    std::int64_t keys = 0;
    for (char flag : adv.key_mask[static_cast<std::size_t>(i)]) {
      keys += flag;
    }
    EXPECT_EQ(keys, 6);  // layers_per_job = m
  }
}

TEST(Adversary, CrossValidationAgainstGenericEngine) {
  // The materialized instance replayed through the generic engine with
  // key-avoiding FIFO must reproduce the co-simulated flows EXACTLY.
  for (int m : {3, 5, 8}) {
    LowerBoundSimOptions options;
    options.m = m;
    options.num_jobs = 30;
    const AdversarialInstance adv = MakeAdversarialInstance(options);

    FifoScheduler::Options fifo_options;
    fifo_options.tie_break = FifoTieBreak::kAvoidMarked;
    fifo_options.deprioritize = [&adv](JobId job, NodeId node) {
      return adv.is_key(job, node);
    };
    FifoScheduler fifo(std::move(fifo_options));
    const SimResult result = Simulate(adv.instance, m, fifo);
    ASSERT_TRUE(ValidateSchedule(result.full_schedule(), adv.instance).feasible);

    for (JobId i = 0; i < adv.instance.job_count(); ++i) {
      EXPECT_EQ(result.flows.flow[static_cast<std::size_t>(i)],
                adv.fifo_run.flow[static_cast<std::size_t>(i)])
          << "m=" << m << " job " << i;
    }
    EXPECT_EQ(result.flows.max_flow, adv.fifo_run.max_flow) << "m=" << m;
  }
}

TEST(Adversary, CertifiedOptUpperIsFeasible) {
  // Verify OPT <= m+1 on a small materialized instance via the paper's
  // own witness schedule idea, checked with the generic lower bounds and
  // an actual greedy-on-keys schedule... here we check the lower bounds
  // never exceed m+1, and that the instance admits the claim on a tiny
  // case via brute force in opt_test-sized instances.
  LowerBoundSimOptions options;
  options.m = 4;
  options.num_jobs = 12;
  const AdversarialInstance adv = MakeAdversarialInstance(options);
  EXPECT_LE(MaxFlowLowerBound(adv.instance, 4),
            adv.fifo_run.certified_opt_upper);
}

TEST(Adversary, ClairvoyantFifoNeutralizesTheInstance) {
  // FIFO with the LPF-height tie-break runs keys first (they head the
  // tallest subtrees), so flows collapse back to near OPT — the paper's
  // argument for why intra-job shaping matters.
  LowerBoundSimOptions options;
  options.m = 16;
  options.num_jobs = 120;
  const AdversarialInstance adv = MakeAdversarialInstance(options);

  FifoScheduler::Options lpf_options;
  lpf_options.tie_break = FifoTieBreak::kLpfHeight;
  FifoScheduler lpf_fifo(std::move(lpf_options));
  const SimResult clairvoyant = Simulate(adv.instance, 16, lpf_fifo);
  ASSERT_TRUE(ValidateSchedule(clairvoyant.full_schedule(), adv.instance).feasible);

  // Arbitrary FIFO's flow on the same instance (from the co-simulation).
  EXPECT_LT(clairvoyant.flows.max_flow * 2, adv.fifo_run.max_flow);
  EXPECT_LE(clairvoyant.flows.max_flow,
            3 * adv.fifo_run.certified_opt_upper);
}

}  // namespace
}  // namespace otsched
