// Edge cases of the Algorithm A window machinery.
#include <gtest/gtest.h>

#include "core/alg_a.h"
#include "core/alg_a_full.h"
#include "dag/builders.h"
#include "gen/random_trees.h"
#include "sim/validator.h"

namespace otsched {
namespace {

TEST(AlgAEdge, MissingBatchesLeaveEmptyWindows) {
  // Batches only at windows 0 and 5; the algorithm must idle across the
  // gap and stay aligned.
  Instance instance;
  Rng rng(1);
  instance.add_job(Job(MakeTree(TreeFamily::kMixed, 30, rng), 0));
  instance.add_job(Job(MakeTree(TreeFamily::kMixed, 30, rng), 5 * 4));
  AlgASemiBatchedScheduler::Options options;
  options.known_opt = 8;  // W = 4
  AlgASemiBatchedScheduler scheduler(options);
  const SimResult result = Simulate(instance, 8, scheduler);
  ASSERT_TRUE(ValidateSchedule(result.full_schedule(), instance).feasible);
  EXPECT_TRUE(result.flows.all_completed);
}

TEST(AlgAEdge, TinyJobFinishesInsideItsHead) {
  // A job whose whole LPF schedule fits in the first window: no tail, no
  // MC, finished before phase 3 would ever touch it.
  Instance instance;
  instance.add_job(Job(MakeChain(2), 0));
  AlgASemiBatchedScheduler::Options options;
  options.known_opt = 8;
  AlgASemiBatchedScheduler scheduler(options);
  const SimResult result = Simulate(instance, 8, scheduler);
  EXPECT_EQ(result.flows.max_flow, 2);  // LPF replay, no delay
  EXPECT_EQ(scheduler.mc_busy_violations(), 0);
}

TEST(AlgAEdge, WindowOfOneSlot) {
  // known_opt = 2 gives W = 1: every slot is a window boundary.
  Instance instance;
  Rng rng(2);
  for (int i = 0; i < 5; ++i) {
    instance.add_job(Job(MakeTree(TreeFamily::kBushy, 12, rng), i));
  }
  AlgASemiBatchedScheduler::Options options;
  options.known_opt = 2;
  AlgASemiBatchedScheduler scheduler(options);
  const SimResult result = Simulate(instance, 8, scheduler);
  ASSERT_TRUE(ValidateSchedule(result.full_schedule(), instance).feasible);
  EXPECT_TRUE(result.flows.all_completed);
}

TEST(AlgAEdge, AlphaTwoSplitsTheMachineInHalf) {
  // alpha = 2 is allowed mechanically (the Theorem 5.6 PROOF needs
  // alpha > 3, but the algorithm is well-defined); heads may then use
  // the whole machine.
  Instance instance;
  Rng rng(3);
  for (int i = 0; i < 4; ++i) {
    instance.add_job(Job(MakeTree(TreeFamily::kMixed, 40, rng), 4 * i));
  }
  AlgASemiBatchedScheduler::Options options;
  options.alpha = 2;
  options.known_opt = 8;
  AlgASemiBatchedScheduler scheduler(options);
  const SimResult result = Simulate(instance, 8, scheduler);
  ASSERT_TRUE(ValidateSchedule(result.full_schedule(), instance).feasible);
}

TEST(AlgAEdge, FullVersionWithLargeInitialGuessSkipsDoubling) {
  Instance instance;
  Rng rng(4);
  instance.add_job(Job(MakeTree(TreeFamily::kMixed, 50, rng), 0));
  AlgAScheduler::Options options;
  options.initial_guess = 64;  // far above this job's OPT
  options.beta = 8;
  AlgAScheduler scheduler(options);
  const SimResult result = Simulate(instance, 8, scheduler);
  EXPECT_EQ(scheduler.restarts(), 0);
  EXPECT_EQ(scheduler.guess(), 64);
  ASSERT_TRUE(ValidateSchedule(result.full_schedule(), instance).feasible);
}

TEST(AlgAEdge, LateLoneArrivalAfterQuietPeriod) {
  Instance instance;
  Rng rng(5);
  instance.add_job(Job(MakeTree(TreeFamily::kBranchy, 20, rng), 0));
  instance.add_job(Job(MakeTree(TreeFamily::kBranchy, 20, rng), 1000));
  AlgAScheduler::Options options;
  options.beta = 8;
  AlgAScheduler scheduler(options);
  const SimResult result = Simulate(instance, 4, scheduler);
  ASSERT_TRUE(ValidateSchedule(result.full_schedule(), instance).feasible);
  // The late job must not be penalized by the early one's history: its
  // flow is bounded by the (settled) guess envelope.
  EXPECT_LE(result.flows.flow[1],
            3 * static_cast<Time>(options.beta) * scheduler.guess());
}

}  // namespace
}  // namespace otsched
