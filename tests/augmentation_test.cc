// Tests for analysis/augmentation.h: machine augmentation bookkeeping and
// the qualitative SPAA'16 phenomenon (augmented FIFO is far better on the
// hard instances).
#include <gtest/gtest.h>

#include "analysis/augmentation.h"
#include "dag/builders.h"
#include "gen/certified.h"
#include "gen/fifo_adversary.h"
#include "sched/fifo.h"

namespace otsched {
namespace {

TEST(Augmentation, ZeroEpsMatchesPlainMeasurement) {
  Rng rng(1);
  CertifiedInstance cert = MakeSpacedSaturatedInstance(4, 4, 3, rng);
  FifoScheduler a;
  FifoScheduler b;
  const RatioMeasurement plain = MeasureRatio(cert.instance, 4, a, cert.opt);
  const AugmentedMeasurement augmented =
      MeasureAugmentedRatio(cert.instance, 4, 0.0, b, cert.opt);
  EXPECT_EQ(augmented.algorithm_m, 4);
  EXPECT_EQ(augmented.measurement.max_flow, plain.max_flow);
  EXPECT_DOUBLE_EQ(augmented.measurement.ratio, plain.ratio);
}

TEST(Augmentation, ProcessorCountRoundsUp) {
  Instance instance;
  instance.add_job(Job(MakeChain(2), 0));
  FifoScheduler fifo;
  const AugmentedMeasurement r =
      MeasureAugmentedRatio(instance, 5, 0.2, fifo);
  EXPECT_EQ(r.algorithm_m, 6);
  EXPECT_DOUBLE_EQ(r.eps, 0.2);
}

TEST(Augmentation, AugmentedFifoCollapsesTheAdversary) {
  // The phenomenon that made the un-augmented question interesting: with
  // a little extra capacity, FIFO handles the Section 4 family easily,
  // because the adversary's tight packing needs a fully loaded machine.
  const int m = 32;
  LowerBoundSimOptions options;
  options.m = m;
  options.num_jobs = 200;
  const AdversarialInstance adv = MakeAdversarialInstance(options);
  const double plain_ratio =
      static_cast<double>(adv.fifo_run.max_flow) /
      static_cast<double>(adv.fifo_run.certified_opt_upper);

  FifoScheduler fifo;
  const AugmentedMeasurement augmented = MeasureAugmentedRatio(
      adv.instance, m, 0.5, fifo, adv.fifo_run.certified_opt_upper);
  EXPECT_LT(augmented.measurement.ratio, plain_ratio)
      << "augmentation should help on the packed family";
  EXPECT_LE(augmented.measurement.ratio, 3.0);
}

TEST(Augmentation, CertifiedDenominatorStaysOnBaseMachine) {
  // Denominator must be OPT on m processors, NOT on the augmented count.
  Rng rng(3);
  CertifiedInstance cert = MakeSpacedSaturatedInstance(8, 4, 4, rng);
  FifoScheduler fifo;
  const AugmentedMeasurement r =
      MeasureAugmentedRatio(cert.instance, 8, 1.0, fifo, cert.opt);
  EXPECT_EQ(r.measurement.opt_denominator, cert.opt);
  EXPECT_TRUE(r.measurement.denominator_exact);
  EXPECT_EQ(r.algorithm_m, 16);
}

}  // namespace
}  // namespace otsched
