// Tests for sim/engine.h: readiness, arrivals, capacity, clairvoyance
// enforcement, and end-to-end feasibility of engine-produced schedules.
#include "gtest_compat.h"

#include "common/rng.h"
#include "dag/builders.h"
#include "sim/engine.h"
#include "sim/validator.h"

namespace otsched {
namespace {

/// Greedy test scheduler: runs the first min(m, ready) subjobs.
class TakeAllScheduler : public Scheduler {
 public:
  std::string name() const override { return "take-all"; }
  void pick(const SchedulerView& view, std::vector<SubjobRef>& out) override {
    int budget = view.m();
    for (JobId job : view.alive()) {
      for (NodeId v : view.ready(job)) {
        if (budget == 0) return;
        out.push_back({job, v});
        --budget;
      }
    }
  }
};

/// Scheduler that deliberately idles for `lazy_slots` slots first.
class LazyScheduler : public TakeAllScheduler {
 public:
  explicit LazyScheduler(Time lazy_slots) : lazy_slots_(lazy_slots) {}
  std::string name() const override { return "lazy"; }
  void pick(const SchedulerView& view, std::vector<SubjobRef>& out) override {
    if (view.slot() <= lazy_slots_) return;
    TakeAllScheduler::pick(view, out);
  }

 private:
  Time lazy_slots_;
};

TEST(Engine, ChainOnOneProcessor) {
  Instance instance;
  instance.add_job(Job(MakeChain(4), 0));
  TakeAllScheduler scheduler;
  const SimResult result = Simulate(instance, 1, scheduler);
  EXPECT_EQ(result.flows.max_flow, 4);
  EXPECT_TRUE(ValidateSchedule(result.full_schedule(), instance));
  EXPECT_EQ(result.stats.executed_subjobs, 4);
  EXPECT_EQ(result.stats.horizon, 4);
}

TEST(Engine, ChainIgnoresExtraProcessors) {
  Instance instance;
  instance.add_job(Job(MakeChain(4), 0));
  TakeAllScheduler scheduler;
  const SimResult result = Simulate(instance, 8, scheduler);
  EXPECT_EQ(result.flows.max_flow, 4);  // span-bound, not work-bound
}

TEST(Engine, BlobSaturatesProcessors) {
  Instance instance;
  instance.add_job(Job(MakeParallelBlob(10), 0));
  TakeAllScheduler scheduler;
  const SimResult result = Simulate(instance, 3, scheduler);
  EXPECT_EQ(result.flows.max_flow, 4);  // ceil(10 / 3)
}

TEST(Engine, ReleaseDelaysFirstSlot) {
  Instance instance;
  instance.add_job(Job(MakeChain(1), 5));
  TakeAllScheduler scheduler;
  const SimResult result = Simulate(instance, 2, scheduler);
  EXPECT_EQ(result.flows.completion[0], 6);
  EXPECT_EQ(result.flows.flow[0], 1);
}

TEST(Engine, FastForwardsAcrossIdleGaps) {
  Instance instance;
  instance.add_job(Job(MakeChain(1), 0));
  instance.add_job(Job(MakeChain(1), 1000000));
  TakeAllScheduler scheduler;
  const SimResult result = Simulate(instance, 1, scheduler);
  EXPECT_EQ(result.flows.completion[1], 1000001);
  EXPECT_EQ(result.flows.max_flow, 1);
}

TEST(Engine, ReadinessBlocksChildUntilNextSlot) {
  // star root -> 2 leaves on plenty of processors: root at slot 1,
  // leaves at slot 2; total flow 2.
  Instance instance;
  instance.add_job(Job(MakeStar(2), 0));
  TakeAllScheduler scheduler;
  const SimResult result = Simulate(instance, 4, scheduler);
  EXPECT_EQ(result.flows.max_flow, 2);
  EXPECT_EQ(result.full_schedule().load(1), 1);
  EXPECT_EQ(result.full_schedule().load(2), 2);
}

TEST(Engine, SchedulerIdlingIsAllowed) {
  Instance instance;
  instance.add_job(Job(MakeChain(2), 0));
  LazyScheduler scheduler(3);
  const SimResult result = Simulate(instance, 1, scheduler);
  EXPECT_EQ(result.flows.max_flow, 5);  // 3 idle slots + 2 work slots
  EXPECT_TRUE(ValidateSchedule(result.full_schedule(), instance));
}

TEST(Engine, AliveListIsFifoOrdered) {
  // Three jobs with releases 4, 0, 4: alive order must be release-major,
  // id-minor.
  Instance instance;
  instance.add_job(Job(MakeChain(10), 4));
  instance.add_job(Job(MakeChain(10), 0));
  instance.add_job(Job(MakeChain(10), 4));

  class OrderProbe : public Scheduler {
   public:
    std::string name() const override { return "probe"; }
    void pick(const SchedulerView& view,
              std::vector<SubjobRef>& out) override {
      if (view.slot() == 6) {
        ASSERT_EQ(view.alive().size(), 3u);
        EXPECT_EQ(view.alive()[0], 1);
        EXPECT_EQ(view.alive()[1], 0);
        EXPECT_EQ(view.alive()[2], 2);
        checked = true;
      }
      for (JobId job : view.alive()) {
        for (NodeId v : view.ready(job)) {
          if (static_cast<int>(out.size()) == view.m()) return;
          out.push_back({job, v});
        }
      }
    }
    bool checked = false;
  } probe;
  Simulate(instance, 2, probe);
  EXPECT_TRUE(probe.checked);
}

TEST(Engine, ArrivalCallbackFiresAtReleasePlusOne) {
  Instance instance;
  instance.add_job(Job(MakeChain(1), 3));

  class ArrivalProbe : public TakeAllScheduler {
   public:
    void on_arrival(JobId id, const SchedulerView& view) override {
      EXPECT_EQ(id, 0);
      EXPECT_EQ(view.slot(), 4);
      fired = true;
    }
    bool fired = false;
  } probe;
  Simulate(instance, 1, probe);
  EXPECT_TRUE(probe.fired);
}

TEST(Engine, ProgressCountersAndRemainingWork) {
  Instance instance;
  instance.add_job(Job(MakeChain(3), 0));

  class ProgressProbe : public TakeAllScheduler {
   public:
    void pick(const SchedulerView& view,
              std::vector<SubjobRef>& out) override {
      EXPECT_EQ(view.remaining_work(0) + view.done_work(0), 3);
      if (view.slot() == 2) {
        EXPECT_EQ(view.done_work(0), 1);
        EXPECT_TRUE(view.executed(0, 0));
        EXPECT_FALSE(view.executed(0, 1));
      }
      TakeAllScheduler::pick(view, out);
    }
  } probe;
  Simulate(instance, 1, probe);
}

TEST(EngineDeath, NonClairvoyantDagAccessAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Instance instance;
  instance.add_job(Job(MakeChain(1), 0));

  class Nosy : public TakeAllScheduler {
   public:
    std::string name() const override { return "nosy"; }
    void pick(const SchedulerView& view,
              std::vector<SubjobRef>& out) override {
      (void)view.dag(0);  // not declared clairvoyant -> abort
      TakeAllScheduler::pick(view, out);
    }
  } nosy;
  EXPECT_DEATH(Simulate(instance, 1, nosy), "non-clairvoyant");
}

TEST(EngineDeath, OverCapacityPickAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Instance instance;
  instance.add_job(Job(MakeParallelBlob(4), 0));

  class Greedy : public Scheduler {
   public:
    std::string name() const override { return "greedy"; }
    void pick(const SchedulerView& view,
              std::vector<SubjobRef>& out) override {
      for (NodeId v : view.ready(0)) out.push_back({0, v});  // all 4 on m=2
    }
  } greedy;
  EXPECT_DEATH(Simulate(instance, 2, greedy), "picked");
}

TEST(EngineDeath, NotReadyPickAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Instance instance;
  instance.add_job(Job(MakeChain(2), 0));

  class Jumper : public Scheduler {
   public:
    std::string name() const override { return "jumper"; }
    void pick(const SchedulerView& view,
              std::vector<SubjobRef>& out) override {
      (void)view;
      out.push_back({0, 1});  // child before parent
    }
  } jumper;
  EXPECT_DEATH(Simulate(instance, 1, jumper), "not ready");
}

TEST(EngineDeath, DuplicateSameSlotPickAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Instance instance;
  instance.add_job(Job(MakeParallelBlob(2), 0));

  class Duper : public Scheduler {
   public:
    std::string name() const override { return "duper"; }
    void pick(const SchedulerView& view,
              std::vector<SubjobRef>& out) override {
      (void)view;
      out.push_back({0, 0});
      out.push_back({0, 0});
    }
  } duper;
  EXPECT_DEATH(Simulate(instance, 2, duper), "");
}

TEST(EngineDeath, StalledSchedulerHitsHorizonBound) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Instance instance;
  instance.add_job(Job(MakeChain(1), 0));

  class Stall : public Scheduler {
   public:
    std::string name() const override { return "stall"; }
    void pick(const SchedulerView&, std::vector<SubjobRef>&) override {}
  } stall;
  SimOptions options;
  options.max_horizon = 100;
  EXPECT_DEATH(Simulate(instance, 1, stall, options), "horizon");
}

TEST(Engine, FlowOnlySkipsScheduleButKeepsNumbers) {
  Instance instance;
  instance.add_job(Job(MakeStar(3), 0));
  instance.add_job(Job(MakeChain(4), 2));
  TakeAllScheduler full_scheduler;
  const SimResult full = Simulate(instance, 2, full_scheduler);
  TakeAllScheduler flow_scheduler;
  const SimResult flow = Simulate(instance, 2, flow_scheduler,
                                  FlowOnlyOptions());
  EXPECT_FALSE(flow.has_schedule());
  EXPECT_EQ(flow.flows.completion, full.flows.completion);
  EXPECT_EQ(flow.flows.flow, full.flows.flow);
  EXPECT_EQ(flow.flows.max_flow, full.flows.max_flow);
  EXPECT_EQ(flow.stats.horizon, full.stats.horizon);
  EXPECT_EQ(flow.stats.executed_subjobs, full.stats.executed_subjobs);
  EXPECT_EQ(flow.stats.idle_processor_slots,
            full.stats.idle_processor_slots);
  EXPECT_EQ(flow.stats.busy_slots, full.stats.busy_slots);
}

TEST(EngineDeath, FullScheduleAccessorOnFlowOnlyRun) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Instance instance;
  instance.add_job(Job(MakeChain(1), 0));
  TakeAllScheduler scheduler;
  const SimResult result = Simulate(instance, 1, scheduler,
                                    FlowOnlyOptions());
  EXPECT_DEATH((void)result.full_schedule(), "flow-only");
}

TEST(Engine, ForceClairvoyanceOverride) {
  // A scheduler that declares clairvoyance can be run with it force-
  // disabled to prove it never actually touches DAGs — here we force it
  // ON for a non-clairvoyant one and read the DAG legally.
  Instance instance;
  instance.add_job(Job(MakeChain(2), 0));

  class Reader : public TakeAllScheduler {
   public:
    void pick(const SchedulerView& view,
              std::vector<SubjobRef>& out) override {
      EXPECT_EQ(view.dag(0).node_count(), 2);
      TakeAllScheduler::pick(view, out);
    }
  } reader;
  SimOptions options;
  options.clairvoyance = ClairvoyanceOverride::kAllow;
  const SimResult result = Simulate(instance, 1, reader, options);
  EXPECT_TRUE(result.flows.all_completed);
}

TEST(Engine, ChaosSchedulerStaysFeasible) {
  // A deliberately erratic (but legal) policy: random subsets of ready
  // subjobs, often idling.  Whatever it does, the engine must yield a
  // feasible complete schedule.
  class Chaos : public Scheduler {
   public:
    std::string name() const override { return "chaos"; }
    void pick(const SchedulerView& view,
              std::vector<SubjobRef>& out) override {
      for (JobId job : view.alive()) {
        for (NodeId v : view.ready(job)) {
          if (static_cast<int>(out.size()) == view.m()) return;
          if (rng_.next_bool(0.4)) out.push_back({job, v});
        }
      }
    }

   private:
    Rng rng_{777};
  };

  Instance instance;
  instance.add_job(Job(MakeStar(6), 0));
  instance.add_job(Job(MakeChain(5), 2));
  instance.add_job(Job(MakeCompleteTree(2, 4), 4));
  Chaos chaos;
  const SimResult result = Simulate(instance, 3, chaos);
  const auto report = ValidateSchedule(result.full_schedule(), instance);
  EXPECT_TRUE(report.feasible) << report.violation;
  EXPECT_TRUE(result.flows.all_completed);
}

TEST(Engine, StatsMatchSchedule) {
  Instance instance;
  instance.add_job(Job(MakeStar(3), 0));
  TakeAllScheduler scheduler;
  const SimResult result = Simulate(instance, 2, scheduler);
  EXPECT_EQ(result.stats.executed_subjobs, 4);
  EXPECT_EQ(result.stats.horizon, result.full_schedule().horizon());
  EXPECT_EQ(result.stats.idle_processor_slots,
            result.full_schedule().idle_processor_slots());
}

TEST(Engine, FastForwardJobReleasedExactlyAtTarget) {
  // After job 0 finishes the engine fast-forwards to release 7's first
  // runnable slot, 8.  Jobs 1 and 2 are both released exactly at the
  // fast-forward target: neither arrival may be skipped, and they must
  // enter the alive list in id order.
  Instance instance;
  instance.add_job(Job(MakeChain(1), 0));
  instance.add_job(Job(MakeChain(1), 7));
  instance.add_job(Job(MakeChain(1), 7));
  TakeAllScheduler scheduler;
  const SimResult result = Simulate(instance, 1, scheduler);
  EXPECT_EQ(result.flows.completion[0], 1);
  EXPECT_EQ(result.flows.completion[1], 8);
  EXPECT_EQ(result.flows.completion[2], 9);
  EXPECT_TRUE(result.flows.all_completed);
  EXPECT_EQ(result.stats.busy_slots, 3);  // gap slots were skipped, not run
  EXPECT_EQ(result.stats.horizon, 9);
}

TEST(Engine, FastForwardChainsAcrossRepeatedGaps) {
  // Each job finishes before the next release: every gap takes the
  // fast-forward path, and each landing slot is exactly release + 1.
  Instance instance;
  instance.add_job(Job(MakeChain(1), 0));
  instance.add_job(Job(MakeChain(1), 100));
  instance.add_job(Job(MakeChain(1), 200));
  TakeAllScheduler scheduler;
  const SimResult result = Simulate(instance, 2, scheduler);
  EXPECT_EQ(result.flows.completion[0], 1);
  EXPECT_EQ(result.flows.completion[1], 101);
  EXPECT_EQ(result.flows.completion[2], 201);
  EXPECT_EQ(result.flows.max_flow, 1);
  EXPECT_EQ(result.stats.busy_slots, 3);
}

TEST(Engine, AllIdleTailAdvancesSlotBySlot) {
  // The last job is alive while the scheduler idles: an all-idle tail at
  // the instance boundary.  Fast-forward must NOT fire (a job is alive),
  // the slot counter must advance one-by-one through the tail, and the
  // idle slots must show up in the flow.
  Instance instance;
  instance.add_job(Job(MakeChain(1), 0));
  instance.add_job(Job(MakeChain(1), 2));
  LazyScheduler scheduler(10);  // idles slots 1..10
  const SimResult result = Simulate(instance, 1, scheduler);
  EXPECT_EQ(result.flows.completion[0], 11);
  EXPECT_EQ(result.flows.completion[1], 12);
  EXPECT_EQ(result.flows.flow[1], 10);  // completed 12, released 2
  EXPECT_EQ(result.stats.busy_slots, 2);
  EXPECT_EQ(result.stats.horizon, 12);
  EXPECT_TRUE(ValidateSchedule(result.full_schedule(), instance));
}

}  // namespace
}  // namespace otsched
