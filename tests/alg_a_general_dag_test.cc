// Tests for the allow_general_dags extension of Algorithm A: no
// guarantees beyond feasibility, but feasibility must be ironclad.
#include "gtest_compat.h"

#include "core/alg_a.h"
#include "core/alg_a_full.h"
#include "dag/builders.h"
#include "gen/arrivals.h"
#include "gen/recursive.h"
#include "sim/validator.h"

namespace otsched {
namespace {

TEST(AlgAGeneralDag, ForkJoinStreamIsFeasible) {
  Rng rng(1);
  Instance instance = MakePeriodicArrivals(
      8, 5,
      [](std::int64_t, Rng& r) { return MakeMapReducePipeline(3, 10, r); },
      rng);
  AlgAScheduler::Options options;
  options.beta = 16;
  options.allow_general_dags = true;
  AlgAScheduler scheduler(options);
  const SimResult result = Simulate(instance, 8, scheduler);
  const auto report = ValidateSchedule(result.full_schedule(), instance);
  EXPECT_TRUE(report.feasible) << report.violation;
  EXPECT_TRUE(result.flows.all_completed);
}

TEST(AlgAGeneralDag, SemiBatchedModeAcceptsDiamonds) {
  Instance instance;
  instance.add_job(Job(MakeForkJoin(6), 0));
  instance.add_job(Job(MakeForkJoin(4), 4));
  AlgASemiBatchedScheduler::Options options;
  options.known_opt = 8;
  options.allow_general_dags = true;
  AlgASemiBatchedScheduler scheduler(options);
  const SimResult result = Simulate(instance, 8, scheduler);
  EXPECT_TRUE(ValidateSchedule(result.full_schedule(), instance).feasible);
}

TEST(AlgAGeneralDag, StillRejectsWithoutTheFlag) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Instance instance;
  instance.add_job(Job(MakeForkJoin(3), 0));
  AlgAScheduler::Options options;
  options.beta = 16;
  AlgAScheduler scheduler(options);
  EXPECT_DEATH(Simulate(instance, 4, scheduler), "out-forest");
}

TEST(AlgAGeneralDag, RestartMidDiamondKeepsFeasibility) {
  // Force restarts while diamonds are half-executed: the remaining
  // sub-DAG (a general DAG with some sources removed) must replan
  // cleanly.
  Rng rng(2);
  Instance instance = MakeBurstyArrivals(
      3, 3, 6,
      [](std::int64_t, Rng& r) { return MakeMapReducePipeline(4, 12, r); },
      rng);
  AlgAScheduler::Options options;
  options.beta = 4;  // aggressive doubling
  options.allow_general_dags = true;
  AlgAScheduler scheduler(options);
  const SimResult result = Simulate(instance, 8, scheduler);
  const auto report = ValidateSchedule(result.full_schedule(), instance);
  EXPECT_TRUE(report.feasible) << report.violation;
  EXPECT_GE(scheduler.restarts(), 1);
}

TEST(AlgAGeneralDag, MixedForestAndDagBatches) {
  Instance instance;
  Rng rng(3);
  instance.add_job(Job(MakeCompleteTree(2, 4), 0));
  instance.add_job(Job(MakeForkJoin(5), 0));
  instance.add_job(Job(MakeMapReducePipeline(2, 6, rng), 3));
  AlgAScheduler::Options options;
  options.beta = 16;
  options.allow_general_dags = true;
  AlgAScheduler scheduler(options);
  const SimResult result = Simulate(instance, 4, scheduler);
  EXPECT_TRUE(ValidateSchedule(result.full_schedule(), instance).feasible);
  EXPECT_TRUE(result.flows.all_completed);
}

}  // namespace
}  // namespace otsched
