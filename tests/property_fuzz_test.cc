// Randomized property and fuzz tests across module boundaries:
//  * the validator detects random corruptions of known-good schedules,
//  * instance transforms preserve the invariants they claim,
//  * the adversary co-simulation matches a hand-derived golden trace,
//  * LPF's value is invariant to tie-breaking (node relabelling),
//  * the src/check oracles agree with the validator and hold on every
//    generated tree family (the differential harness's ground truth).
#include <gtest/gtest.h>

#include <algorithm>

#include "check/oracles.h"
#include "core/lpf.h"
#include "dag/builders.h"
#include "dag/metrics.h"
#include "gen/arrivals.h"
#include "gen/random_trees.h"
#include "job/transforms.h"
#include "lbsim/lbsim.h"
#include "opt/single_batch.h"
#include "sched/fifo.h"
#include "sim/engine.h"
#include "sim/validator.h"

namespace otsched {
namespace {

Instance RandomInstance(std::uint64_t seed, int jobs) {
  Rng rng(seed);
  return MakePoissonArrivals(
      jobs, 0.2,
      [](std::int64_t i, Rng& r) {
        return MakeTree(static_cast<TreeFamily>(i % 4),
                        static_cast<NodeId>(5 + r.next_below(40)), r);
      },
      rng);
}

// Rebuilds a schedule with one mutation applied.
Schedule CopySchedule(const Schedule& source, int m) {
  Schedule copy(m);
  for (Time t = 1; t <= source.horizon(); ++t) {
    for (const SubjobRef& ref : source.at(t)) copy.place(t, ref);
  }
  return copy;
}

class ValidatorFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ValidatorFuzzTest, DetectsRandomCorruptions) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7717);
  const Instance instance = RandomInstance(static_cast<std::uint64_t>(seed),
                                           6);
  const int m = 3;
  FifoScheduler fifo;
  const SimResult good = Simulate(instance, m, fifo);
  ASSERT_TRUE(ValidateSchedule(good.full_schedule(), instance).feasible);

  for (int trial = 0; trial < 24; ++trial) {
    const int mutation = trial % 4;
    // Pick a random occupied slot and a random entry within it.
    const Time t = rng.next_in_range(1, good.full_schedule().horizon());
    const auto slot = good.full_schedule().at(t);
    if (slot.empty()) continue;
    const SubjobRef victim =
        slot[static_cast<std::size_t>(rng.next_below(slot.size()))];

    Schedule bad = CopySchedule(good.full_schedule(), m);
    bool expect_violation = true;
    switch (mutation) {
      case 0:  // duplicate a subjob in a later slot
        bad.place(good.full_schedule().horizon() + 1, victim);
        break;
      case 1: {  // swap: move a subjob one slot before its actual slot
        if (t == 1) {
          expect_violation = false;  // cannot move before slot 1
          break;
        }
        // Rebuild without the victim, placing it earlier.  Moving a
        // subjob earlier violates precedence when its parent ran at
        // t-1, or release when t-1 <= r; either way the FULL axiom set
        // may still pass if the node was independent — so rebuild by
        // moving it before its parent explicitly when it has one.
        Schedule rebuilt(m);
        for (Time u = 1; u <= good.full_schedule().horizon(); ++u) {
          for (const SubjobRef& ref : good.full_schedule().at(u)) {
            if (ref == victim) continue;
            rebuilt.place(u, ref);
          }
        }
        const Dag& dag = instance.job(victim.job).dag();
        if (dag.parents(victim.node).empty()) {
          // Root: move to the release slot itself (axiom 4) when that is
          // a legal slot index; otherwise leave it out (axiom 2).
          const Time release = instance.job(victim.job).release();
          if (release >= 1) rebuilt.place(release, victim);
        } else {
          // Place in the same slot as its (first) parent.
          const NodeId parent = dag.parents(victim.node)[0];
          Time parent_slot = kNoTime;
          for (Time u = 1; u <= good.full_schedule().horizon(); ++u) {
            for (const SubjobRef& ref : good.full_schedule().at(u)) {
              if (ref.job == victim.job && ref.node == parent) {
                parent_slot = u;
              }
            }
          }
          ASSERT_NE(parent_slot, kNoTime);
          rebuilt.place(parent_slot, victim);
        }
        bad = std::move(rebuilt);
        break;
      }
      case 2: {  // drop a subjob entirely
        Schedule rebuilt(m);
        for (Time u = 1; u <= good.full_schedule().horizon(); ++u) {
          for (const SubjobRef& ref : good.full_schedule().at(u)) {
            if (ref == victim) continue;
            rebuilt.place(u, ref);
          }
        }
        bad = std::move(rebuilt);
        break;
      }
      case 3:  // overload a slot beyond m with a fresh duplicate
        for (int k = 0; k <= m; ++k) {
          bad.place(t, victim);
        }
        break;
    }
    if (!expect_violation) continue;
    EXPECT_FALSE(ValidateSchedule(bad, instance).feasible)
        << "mutation " << mutation << " at slot " << t << " undetected";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidatorFuzzTest,
                         ::testing::Range(1, 9));

class TransformPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TransformPropertyTest, RoundReleasesUpProperties) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Instance instance = RandomInstance(seed, 10);
  for (Time quantum : {1, 3, 7}) {
    const Instance rounded = RoundReleasesUp(instance, quantum);
    // Batched, work preserved, releases moved by less than quantum,
    // idempotent.
    EXPECT_TRUE(rounded.is_batched(quantum));
    EXPECT_EQ(rounded.total_work(), instance.total_work());
    for (JobId i = 0; i < instance.job_count(); ++i) {
      const Time delta =
          rounded.job(i).release() - instance.job(i).release();
      EXPECT_GE(delta, 0);
      EXPECT_LT(delta, quantum);
    }
    const Instance twice = RoundReleasesUp(rounded, quantum);
    for (JobId i = 0; i < instance.job_count(); ++i) {
      EXPECT_EQ(twice.job(i).release(), rounded.job(i).release());
    }
  }
}

TEST_P(TransformPropertyTest, UnionPerReleasePreservesProfiles) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Instance instance = RandomInstance(seed, 8);
  UnionMapping mapping;
  const Instance merged = UnionPerRelease(instance, &mapping);

  EXPECT_EQ(merged.total_work(), instance.total_work());
  EXPECT_EQ(merged.max_span(), instance.max_span());
  // One merged job per distinct release; refs cover every original node
  // exactly once.
  std::int64_t mapped = 0;
  for (const auto& refs : mapping.original_refs) {
    mapped += static_cast<std::int64_t>(refs.size());
  }
  EXPECT_EQ(mapped, instance.total_work());
  // The merged W(d) profile is the sum of the members' profiles.
  for (JobId k = 0; k < merged.job_count(); ++k) {
    const Time release = merged.job(k).release();
    for (std::int64_t d = 0; d <= merged.job(k).span(); ++d) {
      std::int64_t expected = 0;
      for (JobId i = 0; i < instance.job_count(); ++i) {
        if (instance.job(i).release() == release) {
          expected += instance.job(i).metrics().w_deeper(d);
        }
      }
      EXPECT_EQ(merged.job(k).metrics().w_deeper(d), expected)
          << "release " << release << " d " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformPropertyTest,
                         ::testing::Range(1, 7));

TEST(GoldenAdversary, HandDerivedSmallTrace) {
  // m = 2, one job, 2 layers.  Hand derivation:
  //   slot 1: layer 1 fresh, avail 2 -> size 3, run 2 non-keys.
  //   slot 2: key of layer 1 runs (1 proc).
  //   slot 3: layer 2 fresh, avail 2 -> size 3, run 2.
  //   slot 4: key of layer 2 runs -> done; completion 4, flow 4.
  LowerBoundSimOptions options;
  options.m = 2;
  options.num_jobs = 1;
  const LowerBoundSimResult result = RunLowerBoundSim(options);
  EXPECT_EQ(result.layer_sizes[0], (std::vector<int>{3, 3}));
  EXPECT_EQ(result.completion[0], 4);
  EXPECT_EQ(result.max_flow, 4);
  EXPECT_EQ(result.certified_opt_upper, 3);
}

TEST(GoldenAdversary, TwoJobsInterleave) {
  // m = 2, gap 3, 2 jobs of 2 layers.  Job 0: slots 1-4 as above.  Job 1
  // arrives at slot 4 (release 3):
  //   slot 4: job0 key (1 proc) + job1 layer-1 fresh with avail 1 ->
  //           size 2, run 1.
  //   slot 5: job1 key layer 1.
  //   slot 6: job1 layer 2 fresh, avail 2 -> size 3, run 2.
  //   slot 7: job1 key layer 2 -> done; flow = 7 - 3 = 4.
  LowerBoundSimOptions options;
  options.m = 2;
  options.num_jobs = 2;
  const LowerBoundSimResult result = RunLowerBoundSim(options);
  EXPECT_EQ(result.layer_sizes[1], (std::vector<int>{2, 3}));
  EXPECT_EQ(result.completion[1], 7);
  EXPECT_EQ(result.flow[1], 4);
}

TEST(LpfInvariance, ValueIsStableUnderRelabelling) {
  // LPF's achieved length on an out-forest equals OPT regardless of node
  // id order; verify by relabelling nodes randomly and re-running.
  Rng rng(77);
  const Dag tree = MakeTree(TreeFamily::kMixed, 80, rng);
  const Time baseline = BuildLpfSchedule(tree, 4).length();
  EXPECT_EQ(baseline, SingleBatchOpt(tree, 4));

  for (int trial = 0; trial < 10; ++trial) {
    std::vector<NodeId> relabel(static_cast<std::size_t>(tree.node_count()));
    for (NodeId v = 0; v < tree.node_count(); ++v) {
      relabel[static_cast<std::size_t>(v)] = v;
    }
    rng.shuffle(relabel);
    Dag::Builder builder(tree.node_count());
    for (NodeId v = 0; v < tree.node_count(); ++v) {
      for (NodeId c : tree.children(v)) {
        builder.add_edge(relabel[static_cast<std::size_t>(v)],
                         relabel[static_cast<std::size_t>(c)]);
      }
    }
    const Dag shuffled = std::move(builder).build();
    EXPECT_EQ(BuildLpfSchedule(shuffled, 4).length(), baseline)
        << "trial " << trial;
  }
}

TEST(OracleProperty, FeasibilityOracleAgreesWithValidator) {
  // The feasibility oracle wraps ValidateSchedule; on random schedules —
  // good and corrupted alike — the two verdicts must coincide whenever
  // every job completes (the oracle additionally rejects stalls).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance instance = RandomInstance(seed, 5);
    const int m = 2;
    FifoScheduler fifo;
    const SimResult run = Simulate(instance, m, fifo);
    ASSERT_TRUE(run.flows.all_completed);
    EXPECT_TRUE(CheckFeasibilityOracle(run.full_schedule(), instance));

    // Corrupt: duplicate the first placed subjob into a fresh slot.
    Schedule bad = CopySchedule(run.full_schedule(), m);
    bad.place(run.full_schedule().horizon() + 1, run.full_schedule().at(1).front());
    EXPECT_EQ(static_cast<bool>(CheckFeasibilityOracle(bad, instance)),
              ValidateSchedule(bad, instance).feasible);
    EXPECT_FALSE(CheckFeasibilityOracle(bad, instance));
  }
}

TEST(OracleProperty, SingleJobOraclesHoldOnEveryFamily) {
  // Corollary 5.4, Lemma 5.2 and Lemma 5.5 as properties: they must hold
  // for every tree family x machine size the generator can emit — this is
  // the ground truth the mutation tests in check_oracle_test.cc perturb.
  for (std::uint64_t seed = 30; seed < 36; ++seed) {
    Rng rng(seed);
    for (int family = 0; family < 4; ++family) {
      const Dag tree =
          MakeTree(static_cast<TreeFamily>(family),
                   static_cast<NodeId>(4 + rng.next_below(28)), rng);
      for (int m : {1, 2, 3, 4, 8}) {
        for (const OracleResult& r :
             CheckSingleJobOracles(tree, m, 4, tree.node_count() <= 16)) {
          EXPECT_TRUE(r.ok)
              << "family " << family << " m " << m << " seed " << seed
              << ": " << ToString(r.id) << ": " << r.detail;
        }
      }
    }
  }
}

TEST(EngineFuzz, FifoAlwaysFeasibleAcrossSeeds) {
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    const Instance instance = RandomInstance(seed, 9);
    for (int m : {1, 2, 5}) {
      FifoScheduler::Options options;
      options.tie_break = FifoTieBreak::kRandom;
      options.seed = seed;
      FifoScheduler fifo(std::move(options));
      const SimResult result = Simulate(instance, m, fifo);
      const auto report = ValidateSchedule(result.full_schedule(), instance);
      ASSERT_TRUE(report.feasible)
          << "seed " << seed << " m " << m << ": " << report.violation;
      ASSERT_TRUE(result.flows.all_completed);
    }
  }
}

}  // namespace
}  // namespace otsched
