// Tests for sim/job_faults.h: the JobFaultSpec shorthand parser and its
// per-token diagnostics, the counter-based determinism contract of the
// crash models, the checkpoint policies, and the reversible-core edge
// cases the fuzz harness cannot pin deterministically — a rollback with
// zero prior checkpoints (full restart), a rollback sharing its slot
// with a processor-fault capacity dip, a rollback after an unrelated
// job was retired, and — the acceptance gate — a >= 1000-case sweep
// holding the kNoLostWorkWhenHealthy and kCommittedFeasibility oracles
// plus engine equivalence under active faults.
#include "gtest_compat.h"

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "check/oracles.h"
#include "common/rng.h"
#include "dag/builders.h"
#include "gen/random_trees.h"
#include "sched/fifo.h"
#include "sim/driver.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "sim/job_faults.h"
#include "sim/observers.h"
#include "sim/trace.h"

namespace otsched {
namespace {

Instance ChainInstance(std::initializer_list<std::pair<NodeId, Time>> jobs) {
  Instance instance;
  instance.set_name("chains");
  for (const auto& [length, release] : jobs) {
    instance.add_job(Job(MakeChain(length), release));
  }
  return instance;
}

SimOptions FaultedFlowOnly(const JobFaultSpec& spec) {
  SimOptions options = FlowOnlyOptions();
  options.job_faults = spec;
  return options;
}

// ---- shorthand parsing ----

TEST(JobFaultSpec, ShorthandRoundTripsThroughToString) {
  std::string error;
  const std::optional<JobFaultSpec> crash =
      ParseJobFaultSpec("random-crash:7:0.1", &error);
  ASSERT_TRUE(crash.has_value()) << error;
  EXPECT_EQ(crash->model, JobFaultModel::kRandomCrash);
  EXPECT_EQ(crash->seed, 7u);
  EXPECT_DOUBLE_EQ(crash->rate, 0.1);
  EXPECT_EQ(ToString(*crash), "random-crash:7:0.1");

  const std::optional<JobFaultSpec> periodic =
      ParseJobFaultSpec("periodic-crash:3:32", &error);
  ASSERT_TRUE(periodic.has_value()) << error;
  EXPECT_EQ(periodic->model, JobFaultModel::kPeriodicCrash);
  EXPECT_EQ(periodic->period, 32);
  EXPECT_EQ(ToString(*periodic), "periodic-crash:3:32");

  // adversarial-loss's third field is the volatile-work trigger.
  const std::optional<JobFaultSpec> loss =
      ParseJobFaultSpec("adversarial-loss:1:4", &error);
  ASSERT_TRUE(loss.has_value()) << error;
  EXPECT_EQ(loss->model, JobFaultModel::kAdversarialLoss);
  EXPECT_EQ(loss->threshold, 4);
  EXPECT_EQ(ToString(*loss), "adversarial-loss:1:4");

  EXPECT_EQ(ToString(JobFaultSpec{}), "none");
}

TEST(JobFaultSpec, RejectsMalformedShorthandWithPerTokenDiagnostics) {
  std::string error;
  EXPECT_FALSE(ParseJobFaultSpec("meteor-strike", &error).has_value());
  EXPECT_NE(error.find("unknown job-fault model"), std::string::npos)
      << error;

  EXPECT_FALSE(ParseJobFaultSpec("random-crash:x", &error).has_value());
  EXPECT_NE(error.find("seed"), std::string::npos) << error;

  EXPECT_FALSE(ParseJobFaultSpec("random-crash:1:0.95", &error).has_value());
  EXPECT_NE(error.find("[0, 0.9]"), std::string::npos) << error;

  EXPECT_FALSE(ParseJobFaultSpec("periodic-crash:1:1", &error).has_value());
  EXPECT_NE(error.find("period"), std::string::npos) << error;

  EXPECT_FALSE(ParseJobFaultSpec("adversarial-loss:1:0", &error).has_value());
  EXPECT_NE(error.find("threshold"), std::string::npos) << error;

  EXPECT_FALSE(
      ParseJobFaultSpec("random-crash:1:0.1:9", &error).has_value());
  EXPECT_NE(error.find("too many"), std::string::npos) << error;
}

TEST(JobFaultSpec, CheckpointPolicyShorthandParsesIntoSpec) {
  std::string error;
  JobFaultSpec spec;
  ASSERT_TRUE(ParseCheckpointPolicyInto("every-slots:4", &spec, &error))
      << error;
  EXPECT_EQ(spec.checkpoint, CheckpointPolicy::kEveryKSlots);
  EXPECT_EQ(spec.checkpoint_every, 4);
  EXPECT_EQ(CheckpointPolicyString(spec), "every-slots:4");

  ASSERT_TRUE(ParseCheckpointPolicyInto("every-subjobs:3", &spec, &error))
      << error;
  EXPECT_EQ(spec.checkpoint, CheckpointPolicy::kEveryKSubjobs);
  EXPECT_EQ(CheckpointPolicyString(spec), "every-subjobs:3");

  ASSERT_TRUE(ParseCheckpointPolicyInto("on-completion", &spec, &error))
      << error;
  EXPECT_EQ(spec.checkpoint, CheckpointPolicy::kOnCompletion);
  EXPECT_EQ(CheckpointPolicyString(spec), "on-completion");

  EXPECT_FALSE(ParseCheckpointPolicyInto("every-slots:0", &spec, &error));
  EXPECT_NE(error.find("interval"), std::string::npos) << error;
  EXPECT_FALSE(ParseCheckpointPolicyInto("on-completion:3", &spec, &error));
  EXPECT_NE(error.find("no interval"), std::string::npos) << error;
  EXPECT_FALSE(ParseCheckpointPolicyInto("hourly", &spec, &error));
  EXPECT_NE(error.find("checkpoint policy"), std::string::npos) << error;
}

// ---- sequencer determinism ----

TEST(JobFaultSequencer, RandomCrashIsAPureFunctionOfSeedSlotAndJob) {
  JobFaultSpec spec;
  spec.model = JobFaultModel::kRandomCrash;
  spec.seed = 42;
  spec.rate = 0.3;
  const JobFaultSequencer sequencer(spec);

  // Forward sweep, reverse sweep, and a fresh sequencer must agree on
  // every (slot, job): crashes are counter-based, never visit-order
  // dependent (the contract that keeps all three engines bit-identical
  // and makes fuzz repros replayable).
  std::vector<bool> forward;
  for (Time slot = 1; slot <= 100; ++slot) {
    for (JobId job = 0; job < 8; ++job) {
      forward.push_back(sequencer.crashes(slot, job, 0, 1));
    }
  }
  const JobFaultSequencer fresh(spec);
  std::size_t index = forward.size();
  for (Time slot = 100; slot >= 1; --slot) {
    for (JobId job = 7; job >= 0; --job) {
      --index;
      EXPECT_EQ(fresh.crashes(slot, job, 0, 1), forward[index])
          << "slot " << slot << " job " << job;
    }
  }

  // A job with no volatile work has nothing to lose and never crashes.
  bool crashed_somewhere = false;
  for (Time slot = 1; slot <= 100; ++slot) {
    EXPECT_FALSE(sequencer.crashes(slot, 0, 0, 0)) << "slot " << slot;
    crashed_somewhere = crashed_somewhere || sequencer.crashes(slot, 0, 0, 1);
  }
  EXPECT_TRUE(crashed_somewhere);

  // A different seed must diverge somewhere (the seed is actually mixed).
  JobFaultSpec other = spec;
  other.seed = 43;
  const JobFaultSequencer alt(other);
  bool diverged = false;
  index = 0;
  for (Time slot = 1; slot <= 100 && !diverged; ++slot) {
    for (JobId job = 0; job < 8; ++job) {
      diverged = diverged || alt.crashes(slot, job, 0, 1) != forward[index++];
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(JobFaultSequencer, PeriodicCrashFiresOnPositiveMultiplesOfAge) {
  JobFaultSpec spec;
  spec.model = JobFaultModel::kPeriodicCrash;
  spec.period = 5;
  const JobFaultSequencer sequencer(spec);
  // Age = slot - release; crashes exactly when age is a positive
  // multiple of the period.
  const Time release = 3;
  for (Time slot = release; slot <= release + 20; ++slot) {
    const Time age = slot - release;
    EXPECT_EQ(sequencer.crashes(slot, 0, release, 1),
              age > 0 && age % 5 == 0)
        << "slot " << slot;
  }
}

TEST(JobFaultSequencer, AdversarialLossTriggersAtTheVolatileThreshold) {
  JobFaultSpec spec;
  spec.model = JobFaultModel::kAdversarialLoss;
  spec.threshold = 4;
  const JobFaultSequencer sequencer(spec);
  EXPECT_FALSE(sequencer.crashes(10, 0, 0, 3));
  EXPECT_TRUE(sequencer.crashes(10, 0, 0, 4));
  EXPECT_TRUE(sequencer.crashes(10, 0, 0, 9));
}

TEST(JobFaultSequencer, CheckpointDueFollowsThePolicy) {
  JobFaultSpec spec;
  spec.model = JobFaultModel::kRandomCrash;
  spec.checkpoint = CheckpointPolicy::kEveryKSlots;
  spec.checkpoint_every = 3;
  const JobFaultSequencer slots(spec);
  EXPECT_TRUE(slots.checkpoint_due(3, 1));
  EXPECT_FALSE(slots.checkpoint_due(4, 1));
  EXPECT_TRUE(slots.checkpoint_due(6, 1));
  EXPECT_FALSE(slots.checkpoint_due(6, 0));  // nothing volatile to commit

  spec.checkpoint = CheckpointPolicy::kEveryKSubjobs;
  const JobFaultSequencer subjobs(spec);
  EXPECT_FALSE(subjobs.checkpoint_due(5, 2));
  EXPECT_TRUE(subjobs.checkpoint_due(5, 3));
  EXPECT_TRUE(subjobs.checkpoint_due(5, 7));

  spec.checkpoint = CheckpointPolicy::kOnCompletion;
  const JobFaultSequencer completion(spec);
  EXPECT_FALSE(completion.checkpoint_due(3, 5));  // only the finish commits
}

// ---- deterministic engine edge cases ----

// A rollback with ZERO prior checkpoints is a full restart.  Chain of 6,
// m = 1, periodic crash at age 6, on-completion policy: the job executes
// slots 1..5 (one short of finishing), crashes at the top of slot 6
// losing all 5 subjobs, restarts inside slot 6, and finishes at slot 11.
TEST(JobFaultEngine, RollbackWithZeroCheckpointsRestartsTheJob) {
  const Instance instance = ChainInstance({{6, 0}});
  JobFaultSpec spec;
  spec.model = JobFaultModel::kPeriodicCrash;
  spec.period = 6;
  spec.checkpoint = CheckpointPolicy::kOnCompletion;

  FifoScheduler fifo;
  const SimResult result =
      Simulate(instance, 1, fifo, FaultedFlowOnly(spec));
  EXPECT_TRUE(result.flows.all_completed);
  EXPECT_EQ(result.flows.max_flow, 11);
  EXPECT_EQ(result.stats.job_rollbacks, 1);
  EXPECT_EQ(result.stats.wasted_subjob_slots, 5);
  EXPECT_EQ(result.stats.checkpoints, 0);  // no interval commits
  EXPECT_EQ(result.stats.horizon, 11);
  // Busy slots include the re-executed work; the committed count does not.
  EXPECT_EQ(result.stats.executed_subjobs, 6);
  EXPECT_EQ(result.stats.busy_slots, 11);
}

// A rollback sharing its slot with a processor-fault capacity dip: the
// dip zeroes the slot's capacity, and the crash at the same slot rolls
// the job back.  Chain of 6, m = 1, periodic crash at age 6, a budget
// trace dipping slot 6 to capacity 0.  Timeline: execute 1..5 (5 done),
// slot 6 crashes (waste 5) AND has no capacity (nothing executes),
// execute 7..11 (5 done), slot 12 crashes again (waste 5), restart
// inside slot 12, finish at slot 17.
TEST(JobFaultEngine, RollbackSharesSlotWithCapacityDip) {
  const Instance instance = ChainInstance({{6, 0}});
  BudgetTrace dip;
  dip.set(6, 0);

  JobFaultSpec job_spec;
  job_spec.model = JobFaultModel::kPeriodicCrash;
  job_spec.period = 6;

  SimOptions options = FaultedFlowOnly(job_spec);
  options.faults.model = FaultModel::kTrace;
  options.faults.trace = &dip;

  FifoScheduler fifo;
  const SimResult result = Simulate(instance, 1, fifo, options);
  EXPECT_TRUE(result.flows.all_completed);
  EXPECT_EQ(result.flows.max_flow, 17);
  EXPECT_EQ(result.stats.job_rollbacks, 2);
  EXPECT_EQ(result.stats.wasted_subjob_slots, 10);
  EXPECT_EQ(result.stats.faulted_slots, 1);

  // The reference engine must agree bit-for-bit on the combined
  // processor-fault + job-fault slot.
  FifoScheduler reference_fifo;
  const SimResult reference =
      ReferenceSimulate(instance, 1, reference_fifo, options);
  EXPECT_EQ(reference.flows.max_flow, result.flows.max_flow);
  EXPECT_EQ(reference.stats.job_rollbacks, result.stats.job_rollbacks);
  EXPECT_EQ(reference.stats.wasted_subjob_slots,
            result.stats.wasted_subjob_slots);
  EXPECT_EQ(reference.stats.horizon, result.stats.horizon);
}

// A rollback AFTER an unrelated job was retired: job A (chain of 2)
// finishes at slot 2 and is retired immediately; job B (chain of 6)
// crashes at slot 6 — after A's arena region was recycled — and must
// roll back cleanly.  m = 2 so both jobs run concurrently.
TEST(JobFaultEngine, RollbackAfterRetireFinishedOfUnrelatedJob) {
  JobFaultSpec spec;
  spec.model = JobFaultModel::kPeriodicCrash;
  spec.period = 6;

  FifoScheduler fifo;
  RunContext context;
  context.options = FaultedFlowOnly(spec);
  SimDriver driver(2, fifo, context);
  const JobId a = driver.submit(Job(MakeChain(2), 0));
  const JobId b = driver.submit(Job(MakeChain(6), 0));

  std::size_t retired = 0;
  std::vector<SimDriver::FinishedJob> finished;
  while (driver.advance(1) > 0) {
    for (const SimDriver::FinishedJob& done : driver.take_finished()) {
      finished.push_back(done);
    }
    // Retire eagerly so A's node region is recycled well before B's
    // crash at slot 6.
    retired += driver.retire_finished();
  }
  ASSERT_EQ(finished.size(), 2u);
  EXPECT_EQ(retired, 2u);
  EXPECT_EQ(finished[0].job, a);
  EXPECT_EQ(finished[0].finish, 2);
  EXPECT_EQ(finished[1].job, b);
  // B executes 1..5, crashes at the top of slot 6 (waste 5), restarts
  // inside slot 6, finishes at slot 11.
  EXPECT_EQ(finished[1].finish, 11);

  const SimResult result = driver.drain();
  EXPECT_TRUE(result.flows.all_completed);
  EXPECT_EQ(result.stats.job_rollbacks, 1);
  EXPECT_EQ(result.stats.wasted_subjob_slots, 5);
}

// every-slots checkpointing bounds the waste: chain of 12, m = 1,
// periodic crash at age 5, commits every 2 slots.  The only crash slots
// with volatile work are multiples of 5 that follow an odd slot — slot
// 10 (1 volatile subjob from slot 9).  Hand timeline: execute 1..9
// (commits at 2, 4, 6, 8), slot 10 crashes (waste 1, back to 8 done),
// re-executes inside slot 10 (commit at 10), finishes at slot 13.
TEST(JobFaultEngine, EveryKSlotsCheckpointLimitsWaste) {
  const Instance instance = ChainInstance({{12, 0}});
  JobFaultSpec spec;
  spec.model = JobFaultModel::kPeriodicCrash;
  spec.period = 5;
  spec.checkpoint = CheckpointPolicy::kEveryKSlots;
  spec.checkpoint_every = 2;

  FifoScheduler fifo;
  const SimResult result =
      Simulate(instance, 1, fifo, FaultedFlowOnly(spec));
  EXPECT_TRUE(result.flows.all_completed);
  EXPECT_EQ(result.flows.max_flow, 13);
  EXPECT_EQ(result.stats.job_rollbacks, 1);
  EXPECT_EQ(result.stats.wasted_subjob_slots, 1);
  // Interval commits at slots 2, 4, 6, 8, 10, 12; the finish at slot 13
  // commits implicitly and is not counted.
  EXPECT_EQ(result.stats.checkpoints, 6);
}

// every-subjobs checkpointing can defuse an adversarial trigger: with a
// commit every 3 subjobs, volatile work never reaches the loss threshold
// of 5, so the adversary never fires at all.
TEST(JobFaultEngine, EveryKSubjobsCheckpointDefusesAdversarialLoss) {
  const Instance instance = ChainInstance({{12, 0}});
  JobFaultSpec spec;
  spec.model = JobFaultModel::kAdversarialLoss;
  spec.threshold = 5;
  spec.checkpoint = CheckpointPolicy::kEveryKSubjobs;
  spec.checkpoint_every = 3;

  FifoScheduler fifo;
  const SimResult result =
      Simulate(instance, 1, fifo, FaultedFlowOnly(spec));
  EXPECT_TRUE(result.flows.all_completed);
  EXPECT_EQ(result.flows.max_flow, 12);
  EXPECT_EQ(result.stats.job_rollbacks, 0);
  EXPECT_EQ(result.stats.wasted_subjob_slots, 0);
  // Commits when volatile work reaches 3: after slots 3, 6, and 9; the
  // finish at slot 12 commits implicitly.
  EXPECT_EQ(result.stats.checkpoints, 3);
}

// ---- the >= 1000-case acceptance sweep ----

// Random small forests x crash models x checkpoint policies.  Every case
// holds:
//   * kNoLostWorkWhenHealthy — an armed-but-silent run (rate 0) is
//     bit-identical to faults-off;
//   * kCommittedFeasibility — the streamed event trace of an actively
//     crashing run is feasible over committed work and its execute count
//     reconciles exactly as total_work + wasted_subjob_slots;
//   * engine equivalence — SimDriver and ReferenceSimulate agree on
//     flows and fault stats under active faults (every 4th case).
TEST(JobFaultFuzz, ThousandCaseSweepHoldsTheRollbackContracts) {
  int cases = 0;
  for (std::uint64_t seed = 1; seed <= 250; ++seed) {
    Rng rng(seed * 7919);
    Instance instance;
    instance.set_name("fuzz");
    const int jobs = 2 + static_cast<int>(seed % 3);
    for (int j = 0; j < jobs; ++j) {
      const NodeId nodes = 4 + static_cast<NodeId>(rng.next_below(9));
      const Time release = static_cast<Time>(rng.next_below(5));
      instance.add_job(Job(MakeAttachmentTree(nodes, 0.4, rng), release));
    }
    const int m = 1 + static_cast<int>(seed % 4);

    for (int variant = 0; variant < 4; ++variant) {
      JobFaultSpec active;
      switch (variant % 3) {
        case 0:
          active.model = JobFaultModel::kRandomCrash;
          active.seed = seed;
          active.rate = 0.05 + 0.05 * static_cast<double>(variant);
          break;
        case 1:
          active.model = JobFaultModel::kPeriodicCrash;
          active.period = 3 + static_cast<Time>(seed % 13);
          break;
        default:
          active.model = JobFaultModel::kAdversarialLoss;
          active.threshold = 2 + static_cast<std::int64_t>(seed % 7);
          break;
      }
      // every-slots checkpointing guarantees progress against every
      // crash model (any job served in a commit slot banks >= 1
      // subjob); the service-coupled policies are covered by the
      // deterministic cases above.
      active.checkpoint = CheckpointPolicy::kEveryKSlots;
      active.checkpoint_every = 2 + static_cast<std::int64_t>(seed % 5);
      ++cases;

      // Leg 1: no-lost-work.  Armed with rate 0 so the model never
      // fires; everything but the checkpoint bookkeeping must be
      // bit-identical to faults-off.
      JobFaultSpec armed = active;
      armed.model = JobFaultModel::kRandomCrash;
      armed.rate = 0.0;
      FifoScheduler baseline_fifo;
      const SimResult baseline =
          Simulate(instance, m, baseline_fifo, FlowOnlyOptions());
      FifoScheduler armed_fifo;
      const SimResult armed_run =
          Simulate(instance, m, armed_fifo, FaultedFlowOnly(armed));
      const OracleResult healthy =
          CheckNoLostWorkWhenHealthyOracle(baseline, armed_run);
      ASSERT_TRUE(healthy.ok)
          << "seed " << seed << " variant " << variant << ": "
          << healthy.detail;

      // Leg 2: committed feasibility + reconciliation on an actively
      // crashing run, from the streamed trace.
      EventTrace streamed;
      StreamingTraceObserver tracer(streamed);
      RunContext context{FaultedFlowOnly(active), &tracer};
      FifoScheduler active_fifo;
      const SimResult crashed =
          Simulate(instance, m, active_fifo, context);
      EXPECT_TRUE(crashed.flows.all_completed)
          << "seed " << seed << " variant " << variant;
      const OracleResult feasible = CheckCommittedFeasibilityOracle(
          streamed, instance, m, crashed.stats);
      ASSERT_TRUE(feasible.ok)
          << "seed " << seed << " variant " << variant << " ("
          << ToString(active) << "): " << feasible.detail;

      // Leg 3: engine equivalence under active faults.
      if (variant == static_cast<int>(seed % 4)) {
        FifoScheduler reference_fifo;
        const SimResult reference = ReferenceSimulate(
            instance, m, reference_fifo, FaultedFlowOnly(active));
        EXPECT_EQ(reference.flows.max_flow, crashed.flows.max_flow)
            << "seed " << seed << " variant " << variant;
        EXPECT_EQ(reference.stats.job_rollbacks,
                  crashed.stats.job_rollbacks)
            << "seed " << seed << " variant " << variant;
        EXPECT_EQ(reference.stats.wasted_subjob_slots,
                  crashed.stats.wasted_subjob_slots)
            << "seed " << seed << " variant " << variant;
        EXPECT_EQ(reference.stats.horizon, crashed.stats.horizon)
            << "seed " << seed << " variant " << variant;
      }
    }
  }
  EXPECT_GE(cases, 1000);
}

}  // namespace
}  // namespace otsched
