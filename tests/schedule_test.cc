// Tests for sim/schedule.h: slot storage, flows, idle accounting.
#include <gtest/gtest.h>

#include "dag/builders.h"
#include "sim/schedule.h"

namespace otsched {
namespace {

Instance TwoChainInstance() {
  Instance instance;
  instance.add_job(Job(MakeChain(2), 0));
  instance.add_job(Job(MakeChain(1), 3));
  return instance;
}

TEST(Schedule, PlaceAndQuery) {
  Schedule schedule(2);
  schedule.place(1, {0, 0});
  schedule.place(3, {0, 1});
  EXPECT_EQ(schedule.horizon(), 3);
  EXPECT_EQ(schedule.load(1), 1);
  EXPECT_EQ(schedule.load(2), 0);
  EXPECT_EQ(schedule.load(3), 1);
  EXPECT_EQ(schedule.load(99), 0);
  EXPECT_EQ(schedule.total_placed(), 2);
  EXPECT_EQ(schedule.at(1)[0], (SubjobRef{0, 0}));
}

TEST(Schedule, IdleProcessorSlots) {
  Schedule schedule(3);
  schedule.place(1, {0, 0});
  schedule.place(1, {0, 1});
  schedule.place(2, {0, 2});
  // Slot 1: 1 idle; slot 2: 2 idle.
  EXPECT_EQ(schedule.idle_processor_slots(), 3);
}

TEST(Schedule, IdleSlotsRange) {
  Schedule schedule(2);
  schedule.place(1, {0, 0});
  schedule.place(1, {0, 1});
  schedule.place(2, {0, 2});
  schedule.place(3, {1, 0});
  const auto idle = schedule.idle_slots(1, 3);
  EXPECT_EQ(idle, (std::vector<Time>{2, 3}));
  // Against a capacity of 1, only empty slots count.
  EXPECT_TRUE(schedule.idle_slots(1, 3, 1).empty());
}

TEST(Schedule, OutOfOrderPlacementKeepsPerSlotOrder) {
  // Engines append sequentially; tests and LPF head/tail construction
  // place out of order, exercising the CSR staging buffer.  Per-slot
  // order must stay: pre-staging arena entries first, then staged
  // entries in insertion order.
  Schedule schedule(4);
  schedule.place(1, {0, 0});
  schedule.place(2, {0, 1});
  schedule.place(3, {0, 2});
  schedule.place(1, {1, 0});  // out of order: staging begins
  schedule.place(2, {1, 1});
  schedule.place(1, {2, 0});
  EXPECT_EQ(schedule.horizon(), 3);
  EXPECT_EQ(schedule.total_placed(), 6);
  const auto slot1 = schedule.at(1);
  ASSERT_EQ(slot1.size(), 3u);
  EXPECT_EQ(slot1[0], (SubjobRef{0, 0}));
  EXPECT_EQ(slot1[1], (SubjobRef{1, 0}));
  EXPECT_EQ(slot1[2], (SubjobRef{2, 0}));
  const auto slot2 = schedule.at(2);
  ASSERT_EQ(slot2.size(), 2u);
  EXPECT_EQ(slot2[0], (SubjobRef{0, 1}));
  EXPECT_EQ(slot2[1], (SubjobRef{1, 1}));
  ASSERT_EQ(schedule.at(3).size(), 1u);
}

TEST(Schedule, PlacementAfterFlattenReentersSequentialPath) {
  Schedule schedule(2);
  schedule.place(3, {0, 0});
  schedule.place(1, {0, 1});    // stages
  EXPECT_EQ(schedule.load(1), 1);  // read flattens
  schedule.place(3, {0, 2});    // back on the sequential tail path
  schedule.place(5, {1, 0});
  EXPECT_EQ(schedule.horizon(), 5);
  const auto slot3 = schedule.at(3);
  ASSERT_EQ(slot3.size(), 2u);
  EXPECT_EQ(slot3[0], (SubjobRef{0, 0}));
  EXPECT_EQ(slot3[1], (SubjobRef{0, 2}));
  EXPECT_TRUE(schedule.at(4).empty());
  ASSERT_EQ(schedule.at(5).size(), 1u);
  EXPECT_EQ(schedule.total_placed(), 4);
  EXPECT_EQ(schedule.idle_processor_slots(), 2 * 5 - 4);
}

TEST(Schedule, InterleavedStagingRounds) {
  // Several stage/flatten cycles; the arena must accumulate correctly.
  Schedule schedule(8);
  for (int round = 0; round < 4; ++round) {
    schedule.place(2, {round, 0});
    schedule.place(1, {round, 1});  // always out of order
    ASSERT_EQ(schedule.at(1).size(), static_cast<std::size_t>(round + 1));
    ASSERT_EQ(schedule.at(2).size(), static_cast<std::size_t>(round + 1));
  }
  for (int round = 0; round < 4; ++round) {
    EXPECT_EQ(schedule.at(1)[static_cast<std::size_t>(round)],
              (SubjobRef{round, 1}));
    EXPECT_EQ(schedule.at(2)[static_cast<std::size_t>(round)],
              (SubjobRef{round, 0}));
  }
}

TEST(Schedule, IdleSlotsEmptyRange) {
  Schedule schedule(2);
  schedule.place(1, {0, 0});
  // from > to is an empty range, not an error.
  EXPECT_TRUE(schedule.idle_slots(3, 1).empty());
}

TEST(Schedule, IdleSlotsBeyondHorizonAreClamped) {
  Schedule schedule(2);
  schedule.place(1, {0, 0});
  schedule.place(2, {0, 1});
  schedule.place(2, {0, 2});
  // The range is clamped to [1, horizon]: slots past the horizon are
  // not reported (callers reason about the schedule's extent only).
  EXPECT_EQ(schedule.idle_slots(1, 100), (std::vector<Time>{1}));
  EXPECT_TRUE(schedule.idle_slots(3, 100).empty());
}

TEST(Schedule, IdleSlotsZeroCapacity) {
  Schedule schedule(2);
  schedule.place(1, {0, 0});
  // No load is ever strictly below zero capacity.
  EXPECT_TRUE(schedule.idle_slots(1, 1, 0).empty());
}

TEST(Flows, CompletionAndFlow) {
  const Instance instance = TwoChainInstance();
  Schedule schedule(2);
  schedule.place(1, {0, 0});
  schedule.place(2, {0, 1});
  schedule.place(4, {1, 0});
  const FlowSummary flows = ComputeFlows(schedule, instance);
  EXPECT_TRUE(flows.all_completed);
  EXPECT_EQ(flows.completion[0], 2);
  EXPECT_EQ(flows.flow[0], 2);
  EXPECT_EQ(flows.completion[1], 4);
  EXPECT_EQ(flows.flow[1], 1);  // released at 3, done at 4
  EXPECT_EQ(flows.max_flow, 2);
  EXPECT_EQ(flows.max_flow_job, 0);
}

TEST(Flows, DetectsUnfinishedJobs) {
  const Instance instance = TwoChainInstance();
  Schedule schedule(2);
  schedule.place(1, {0, 0});  // job 0 only half done, job 1 untouched
  const FlowSummary flows = ComputeFlows(schedule, instance);
  EXPECT_FALSE(flows.all_completed);
  EXPECT_EQ(flows.completion[0], kNoTime);
  EXPECT_EQ(flows.max_flow, kInfiniteTime);
}

TEST(Flows, EmptyInstance) {
  const FlowSummary flows = ComputeFlows(Schedule(1), Instance());
  EXPECT_TRUE(flows.all_completed);
  EXPECT_EQ(flows.max_flow, 0);
}

TEST(Flows, FlowIsAgainstRelease) {
  Instance instance;
  instance.add_job(Job(MakeChain(1), 10));
  Schedule schedule(1);
  schedule.place(15, {0, 0});
  const FlowSummary flows = ComputeFlows(schedule, instance);
  EXPECT_EQ(flows.flow[0], 5);
}

TEST(Flows, UnfinishedJobSemantics) {
  // Unfinished jobs use two distinct sentinels: completion is kNoTime
  // ("never finished") while flow saturates to kInfiniteTime (so max_flow
  // poisons upward rather than silently under-reporting).
  const Instance instance = TwoChainInstance();
  Schedule schedule(2);
  schedule.place(1, {0, 0});
  schedule.place(4, {1, 0});  // job 1 completes, job 0 is half done
  const FlowSummary flows = ComputeFlows(schedule, instance);
  EXPECT_FALSE(flows.all_completed);
  EXPECT_EQ(flows.completion[0], kNoTime);
  EXPECT_EQ(flows.flow[0], kInfiniteTime);
  EXPECT_EQ(flows.completion[1], 4);
  EXPECT_EQ(flows.flow[1], 1);
  EXPECT_EQ(flows.max_flow, kInfiniteTime);
  EXPECT_EQ(flows.max_flow_job, 0);
}

TEST(Flows, AccumulatorMatchesScheduleDerivedWhenUnfinished) {
  // A legally-unfinished run (e.g. a horizon-capped simulation): the
  // incremental accumulator and the schedule walk must agree exactly,
  // including the unfinished sentinels.
  const Instance instance = TwoChainInstance();
  Schedule schedule(2);
  FlowAccumulator accumulator(instance);
  const auto feed = [&](Time slot, SubjobRef ref) {
    schedule.place(slot, ref);
    accumulator.record(slot, ref.job);
  };
  feed(1, {0, 0});
  feed(2, {0, 1});  // job 0 completes; job 1 never runs
  const FlowSummary incremental = accumulator.finish();
  const FlowSummary derived = ComputeFlows(schedule, instance);
  EXPECT_EQ(incremental.completion, derived.completion);
  EXPECT_EQ(incremental.flow, derived.flow);
  EXPECT_EQ(incremental.max_flow, derived.max_flow);
  EXPECT_EQ(incremental.max_flow_job, derived.max_flow_job);
  EXPECT_EQ(incremental.all_completed, derived.all_completed);
  EXPECT_FALSE(incremental.all_completed);
  EXPECT_EQ(incremental.completion[1], kNoTime);
  EXPECT_EQ(incremental.flow[1], kInfiniteTime);
}

TEST(Flows, AccumulatorAcceptsOutOfOrderSlots) {
  // record() takes the max slot per job, so feeding slots out of order
  // matches the ascending schedule walk.
  const Instance instance = TwoChainInstance();
  FlowAccumulator accumulator(instance);
  accumulator.record(2, 0);
  accumulator.record(1, 0);
  accumulator.record(4, 1);
  const FlowSummary flows = accumulator.finish();
  EXPECT_TRUE(flows.all_completed);
  EXPECT_EQ(flows.completion[0], 2);
  EXPECT_EQ(flows.completion[1], 4);
  EXPECT_EQ(flows.max_flow, 2);
}

}  // namespace
}  // namespace otsched
