// Tests for sim/schedule.h: slot storage, flows, idle accounting.
#include <gtest/gtest.h>

#include "dag/builders.h"
#include "sim/schedule.h"

namespace otsched {
namespace {

Instance TwoChainInstance() {
  Instance instance;
  instance.add_job(Job(MakeChain(2), 0));
  instance.add_job(Job(MakeChain(1), 3));
  return instance;
}

TEST(Schedule, PlaceAndQuery) {
  Schedule schedule(2);
  schedule.place(1, {0, 0});
  schedule.place(3, {0, 1});
  EXPECT_EQ(schedule.horizon(), 3);
  EXPECT_EQ(schedule.load(1), 1);
  EXPECT_EQ(schedule.load(2), 0);
  EXPECT_EQ(schedule.load(3), 1);
  EXPECT_EQ(schedule.load(99), 0);
  EXPECT_EQ(schedule.total_placed(), 2);
  EXPECT_EQ(schedule.at(1)[0], (SubjobRef{0, 0}));
}

TEST(Schedule, IdleProcessorSlots) {
  Schedule schedule(3);
  schedule.place(1, {0, 0});
  schedule.place(1, {0, 1});
  schedule.place(2, {0, 2});
  // Slot 1: 1 idle; slot 2: 2 idle.
  EXPECT_EQ(schedule.idle_processor_slots(), 3);
}

TEST(Schedule, IdleSlotsRange) {
  Schedule schedule(2);
  schedule.place(1, {0, 0});
  schedule.place(1, {0, 1});
  schedule.place(2, {0, 2});
  schedule.place(3, {1, 0});
  const auto idle = schedule.idle_slots(1, 3);
  EXPECT_EQ(idle, (std::vector<Time>{2, 3}));
  // Against a capacity of 1, only empty slots count.
  EXPECT_TRUE(schedule.idle_slots(1, 3, 1).empty());
}

TEST(Flows, CompletionAndFlow) {
  const Instance instance = TwoChainInstance();
  Schedule schedule(2);
  schedule.place(1, {0, 0});
  schedule.place(2, {0, 1});
  schedule.place(4, {1, 0});
  const FlowSummary flows = ComputeFlows(schedule, instance);
  EXPECT_TRUE(flows.all_completed);
  EXPECT_EQ(flows.completion[0], 2);
  EXPECT_EQ(flows.flow[0], 2);
  EXPECT_EQ(flows.completion[1], 4);
  EXPECT_EQ(flows.flow[1], 1);  // released at 3, done at 4
  EXPECT_EQ(flows.max_flow, 2);
  EXPECT_EQ(flows.max_flow_job, 0);
}

TEST(Flows, DetectsUnfinishedJobs) {
  const Instance instance = TwoChainInstance();
  Schedule schedule(2);
  schedule.place(1, {0, 0});  // job 0 only half done, job 1 untouched
  const FlowSummary flows = ComputeFlows(schedule, instance);
  EXPECT_FALSE(flows.all_completed);
  EXPECT_EQ(flows.completion[0], kNoTime);
  EXPECT_EQ(flows.max_flow, kInfiniteTime);
}

TEST(Flows, EmptyInstance) {
  const FlowSummary flows = ComputeFlows(Schedule(1), Instance());
  EXPECT_TRUE(flows.all_completed);
  EXPECT_EQ(flows.max_flow, 0);
}

TEST(Flows, FlowIsAgainstRelease) {
  Instance instance;
  instance.add_job(Job(MakeChain(1), 10));
  Schedule schedule(1);
  schedule.place(15, {0, 0});
  const FlowSummary flows = ComputeFlows(schedule, instance);
  EXPECT_EQ(flows.flow[0], 5);
}

}  // namespace
}  // namespace otsched
