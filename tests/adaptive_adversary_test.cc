// Tests for advsim/adaptive.h: the generalized adaptive adversary.
#include "gtest_compat.h"

#include "advsim/adaptive.h"
#include "dag/validate.h"
#include "opt/brute_force.h"
#include "opt/lower_bounds.h"
#include "sched/fifo.h"
#include "sched/list_greedy.h"
#include "sched/round_robin.h"
#include "sim/validator.h"

namespace otsched {
namespace {

TEST(AdaptiveAdversary, ProducesConsistentInstanceForFifo) {
  FifoScheduler fifo;
  AdaptiveAdversaryOptions options;
  options.m = 8;
  options.num_jobs = 40;
  const AdaptiveAdversaryResult result =
      RunAdaptiveAdversary(fifo, options);

  // The runner itself validates consistency; double-check here plus
  // structure: every job is an out-forest of m layers, keys wired.
  EXPECT_TRUE(
      ValidateSchedule(result.full_schedule(), result.instance).feasible);
  EXPECT_TRUE(result.instance.all_out_forests());
  EXPECT_EQ(result.instance.job_count(), 40);
  for (const auto& keys : result.keys) {
    EXPECT_EQ(keys.size(), 8u);  // layers_per_job = m
  }
  EXPECT_TRUE(result.flows.all_completed);
  EXPECT_EQ(result.certified_opt_upper, 10);  // m + 2
}

TEST(AdaptiveAdversary, KeyAvoidingReplayMatchesExactly) {
  // Cross-validation mirroring lbsim's: replay the materialized instance
  // through the STANDARD engine with the key-avoiding FIFO tie-break
  // (the realization of "arbitrary FIFO against this adversary" on a
  // fixed instance).  Per-slot counts and layer completion times then
  // coincide with the adaptive run, so flows match exactly.
  for (int m : {4, 8}) {
    FifoScheduler adaptive_fifo;
    AdaptiveAdversaryOptions options;
    options.m = m;
    options.num_jobs = 25;
    const AdaptiveAdversaryResult adaptive =
        RunAdaptiveAdversary(adaptive_fifo, options);

    FifoScheduler::Options avoid;
    avoid.tie_break = FifoTieBreak::kAvoidMarked;
    avoid.deprioritize = [&adaptive](JobId job, NodeId node) {
      const auto& keys = adaptive.keys[static_cast<std::size_t>(job)];
      return std::find(keys.begin(), keys.end(), node) != keys.end();
    };
    FifoScheduler replay_fifo(std::move(avoid));
    const SimResult replay = Simulate(adaptive.instance, m, replay_fifo);
    for (JobId i = 0; i < adaptive.instance.job_count(); ++i) {
      EXPECT_EQ(replay.flows.flow[static_cast<std::size_t>(i)],
                adaptive.flows.flow[static_cast<std::size_t>(i)])
          << "m=" << m << " job " << i;
    }
  }
}

TEST(AdaptiveAdversary, ObliviousReplayCanOnlyDoBetter) {
  // Without the adversary in the loop, arbitrary FIFO on the FIXED
  // instance may stumble onto keys early and finish sooner — the
  // adaptive run is the worst case over tie-breaks.
  FifoScheduler adaptive_fifo;
  AdaptiveAdversaryOptions options;
  options.m = 8;
  options.num_jobs = 40;
  const AdaptiveAdversaryResult adaptive =
      RunAdaptiveAdversary(adaptive_fifo, options);

  FifoScheduler replay_fifo;
  const SimResult replay = Simulate(adaptive.instance, 8, replay_fifo);
  EXPECT_LE(replay.flows.max_flow, adaptive.max_flow);
}

TEST(AdaptiveAdversary, CertificateHoldsOnTinyInstance) {
  // m=2: 2 layers of 3 subjobs per job, gap 4.  Brute-force the true OPT
  // of a small materialized instance and check it within the
  // certificate.
  FifoScheduler fifo;
  AdaptiveAdversaryOptions options;
  options.m = 2;
  options.num_jobs = 3;
  const AdaptiveAdversaryResult result = RunAdaptiveAdversary(fifo, options);
  ASSERT_LE(result.instance.total_work(), 30);
  const Time opt = BruteForceOpt(result.instance, 2);
  EXPECT_LE(opt, result.certified_opt_upper);
  EXPECT_GE(opt, MaxFlowLowerBound(result.instance, 2));
}

TEST(AdaptiveAdversary, HurtsEveryNonClairvoyantBaseline) {
  // The generalized construction should push every non-clairvoyant
  // policy visibly above the certificate (how MUCH is experiment E16).
  AdaptiveAdversaryOptions options;
  options.m = 16;
  options.num_jobs = 120;

  FifoScheduler fifo;
  ListGreedyScheduler greedy(3);
  RoundRobinScheduler equi;
  for (Scheduler* scheduler :
       {static_cast<Scheduler*>(&fifo), static_cast<Scheduler*>(&greedy),
        static_cast<Scheduler*>(&equi)}) {
    const AdaptiveAdversaryResult result =
        RunAdaptiveAdversary(*scheduler, options);
    const double ratio =
        static_cast<double>(result.max_flow) /
        static_cast<double>(result.certified_opt_upper);
    EXPECT_GT(ratio, 1.3) << scheduler->name();
  }
}

TEST(AdaptiveAdversaryDeath, RejectsClairvoyantSchedulers) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  FifoScheduler::Options lpf;
  lpf.tie_break = FifoTieBreak::kLpfHeight;
  FifoScheduler clairvoyant(std::move(lpf));
  AdaptiveAdversaryOptions options;
  options.m = 4;
  options.num_jobs = 2;
  EXPECT_DEATH(RunAdaptiveAdversary(clairvoyant, options),
               "non-clairvoyant");
}

TEST(AdaptiveAdversary, KeysAreTheLastFinishedSubjobs) {
  FifoScheduler fifo;
  AdaptiveAdversaryOptions options;
  options.m = 4;
  options.num_jobs = 6;
  const AdaptiveAdversaryResult result = RunAdaptiveAdversary(fifo, options);

  // Recompute per-node completion slots from the schedule and check each
  // key completed no earlier than every other subjob of its layer.
  for (JobId j = 0; j < result.instance.job_count(); ++j) {
    std::vector<Time> done(
        static_cast<std::size_t>(result.instance.job(j).dag().node_count()),
        kNoTime);
    for (Time t = 1; t <= result.full_schedule().horizon(); ++t) {
      for (const SubjobRef& ref : result.full_schedule().at(t)) {
        if (ref.job == j) done[static_cast<std::size_t>(ref.node)] = t;
      }
    }
    const int width = 5;  // m + 1
    for (std::size_t layer = 0;
         layer < result.keys[static_cast<std::size_t>(j)].size(); ++layer) {
      const NodeId key = result.keys[static_cast<std::size_t>(j)][layer];
      for (NodeId v = static_cast<NodeId>(layer) * width;
           v < static_cast<NodeId>(layer + 1) * width; ++v) {
        EXPECT_LE(done[static_cast<std::size_t>(v)],
                  done[static_cast<std::size_t>(key)])
            << "job " << j << " layer " << layer;
      }
    }
  }
}

}  // namespace
}  // namespace otsched
