// Tests for gen/series_parallel.h: the generator emits genuine
// two-terminal SP DAGs and the recognizer classifies correctly.
#include <gtest/gtest.h>

#include "dag/builders.h"
#include "dag/metrics.h"
#include "dag/validate.h"
#include "gen/series_parallel.h"
#include "sched/fifo.h"
#include "sim/validator.h"

namespace otsched {
namespace {

TEST(SeriesParallel, RecognizerAcceptsHandBuiltSpGraphs) {
  // A bare edge.
  EXPECT_TRUE(IsTwoTerminalSeriesParallel(MakeChain(2)));
  // Chains are iterated series compositions.
  EXPECT_TRUE(IsTwoTerminalSeriesParallel(MakeChain(7)));
  // Fork-join diamonds are parallel compositions of 3-chains.
  EXPECT_TRUE(IsTwoTerminalSeriesParallel(MakeForkJoin(4)));
}

TEST(SeriesParallel, RecognizerRejectsNonSp) {
  // One node: no edge.
  EXPECT_FALSE(IsTwoTerminalSeriesParallel(MakeChain(1)));
  // Star: many sinks.
  EXPECT_FALSE(IsTwoTerminalSeriesParallel(MakeStar(3)));
  // The classic N-graph (interleaving dependency) is the forbidden minor.
  const std::vector<std::pair<NodeId, NodeId>> n_graph = {
      {0, 2}, {0, 3}, {1, 3}, {2, 4}, {3, 4}, {1, 4}};
  // Build s -> {0,1}, {4} -> t to make it two-terminal but still non-SP.
  Dag::Builder builder(7);
  const NodeId s = 5;
  const NodeId t = 6;
  for (const auto& [a, b] : n_graph) builder.add_edge(a, b);
  builder.add_edge(s, 0);
  builder.add_edge(s, 1);
  builder.add_edge(4, t);
  EXPECT_FALSE(IsTwoTerminalSeriesParallel(std::move(builder).build()));
}

class SpGeneratorTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SpGeneratorTest, GeneratesValidTwoTerminalSp) {
  const auto [seed, parallel_p] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 52711);
  SeriesParallelOptions options;
  options.size = 50;
  options.parallel_p = parallel_p;
  const Dag dag = MakeSeriesParallelDag(options, rng);

  EXPECT_TRUE(IsAcyclic(dag));
  EXPECT_EQ(dag.node_count(), 50);
  EXPECT_EQ(dag.roots().size(), 1u);
  EXPECT_EQ(dag.leaves().size(), 1u);
  EXPECT_TRUE(IsTwoTerminalSeriesParallel(dag))
      << "seed " << seed << " p " << parallel_p;
  // SP DAGs with parallelism are not out-forests (joins).
  if (parallel_p > 0.0) {
    // (with p = 0 the graph is a chain, which IS an out-forest)
    EXPECT_GE(AnalyzeShape(dag).max_in_degree, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpGeneratorTest,
    ::testing::Combine(::testing::Range(1, 9),
                       ::testing::Values(0.0, 0.4, 0.8)));

TEST(SeriesParallel, PureSeriesIsAChain) {
  Rng rng(3);
  SeriesParallelOptions options;
  options.size = 20;
  options.parallel_p = 0.0;
  const Dag dag = MakeSeriesParallelDag(options, rng);
  EXPECT_EQ(Span(dag), 20);
  EXPECT_TRUE(IsOutForest(dag));
}

TEST(SeriesParallel, SchedulableByFifo) {
  Rng rng(4);
  SeriesParallelOptions options;
  options.size = 120;
  Instance instance;
  for (int i = 0; i < 4; ++i) {
    instance.add_job(Job(MakeSeriesParallelDag(options, rng), 5 * i));
  }
  FifoScheduler fifo;
  const SimResult result = Simulate(instance, 4, fifo);
  const auto report = ValidateSchedule(result.full_schedule(), instance);
  EXPECT_TRUE(report.feasible) << report.violation;
}

TEST(SeriesParallel, NoDuplicateEdges) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    SeriesParallelOptions options;
    options.size = 64;
    options.parallel_p = 0.7;
    const Dag dag = MakeSeriesParallelDag(options, rng);
    for (NodeId v = 0; v < dag.node_count(); ++v) {
      std::vector<NodeId> children(dag.children(v).begin(),
                                   dag.children(v).end());
      std::sort(children.begin(), children.end());
      EXPECT_TRUE(std::adjacent_find(children.begin(), children.end()) ==
                  children.end())
          << "duplicate edge out of node " << v << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace otsched
