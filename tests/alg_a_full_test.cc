// Tests for core/alg_a_full.h: the general Algorithm A with release
// rounding and guess-and-double (Theorem 5.7).
#include <gtest/gtest.h>

#include "core/alg_a_full.h"
#include "dag/builders.h"
#include "gen/arrivals.h"
#include "gen/certified.h"
#include "gen/random_trees.h"
#include "opt/lower_bounds.h"
#include "sim/validator.h"

namespace otsched {
namespace {

TEST(AlgAGeneral, SingleJobFromColdStart) {
  Instance instance;
  Rng rng(1);
  instance.add_job(Job(MakeTree(TreeFamily::kMixed, 64, rng), 0));
  AlgAScheduler scheduler;
  const SimResult result = Simulate(instance, 8, scheduler);
  const auto report = ValidateSchedule(result.full_schedule(), instance);
  ASSERT_TRUE(report.feasible) << report.violation;
  EXPECT_TRUE(result.flows.all_completed);
}

TEST(AlgAGeneral, GuessDoublesOnUnderestimates) {
  // A big job with initial guess 1 forces several restarts.
  Instance instance;
  Rng rng(2);
  instance.add_job(Job(MakeTree(TreeFamily::kBushy, 4000, rng), 0));
  AlgAScheduler::Options options;
  options.beta = 8;  // small beta so doubling happens quickly
  AlgAScheduler scheduler(options);
  const SimResult result = Simulate(instance, 8, scheduler);
  ASSERT_TRUE(ValidateSchedule(result.full_schedule(), instance).feasible);
  EXPECT_GE(scheduler.restarts(), 1);
  EXPECT_GT(scheduler.guess(), 1);
}

TEST(AlgAGeneral, ArbitraryReleasesAreHandled) {
  Rng rng(3);
  Instance instance = MakePoissonArrivals(
      15, 0.05,
      [](std::int64_t, Rng& r) {
        return MakeTree(TreeFamily::kMixed, 40, r);
      },
      rng);
  AlgAScheduler::Options options;
  options.beta = 16;
  AlgAScheduler scheduler(options);
  const SimResult result = Simulate(instance, 8, scheduler);
  const auto report = ValidateSchedule(result.full_schedule(), instance);
  ASSERT_TRUE(report.feasible) << report.violation;
  EXPECT_TRUE(result.flows.all_completed);
}

class AlgAGeneralSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AlgAGeneralSweep, FeasibleWithBoundedRatioOnCertifiedLoads) {
  const auto [m, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 131 + m);
  const Time delta = 4;
  CertifiedInstance cert = MakeSpacedSaturatedInstance(m, delta, 5, rng);

  AlgAScheduler::Options options;
  options.beta = 16;  // tight envelope keeps runtimes small in tests
  AlgAScheduler scheduler(options);
  const SimResult result = Simulate(cert.instance, m, scheduler);
  ASSERT_TRUE(ValidateSchedule(result.full_schedule(), cert.instance).feasible);
  EXPECT_TRUE(result.flows.all_completed);
  EXPECT_GE(result.flows.max_flow, cert.opt);
  // Theorem 5.7 headline envelope (very loose; tightness is measured by
  // the experiment harness, not asserted here).
  EXPECT_LE(result.flows.max_flow, 1548 * cert.opt);
  EXPECT_EQ(scheduler.mc_busy_violations(), 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlgAGeneralSweep,
                         ::testing::Combine(::testing::Values(4, 8, 16),
                                            ::testing::Values(1, 2, 3)));

TEST(AlgAGeneral, RestartPreservesFeasibilityMidJob) {
  // Jobs large enough that restarts interrupt half-executed DAGs; the
  // remaining sub-forest re-plan must stay feasible.
  Instance instance;
  Rng rng(9);
  for (int i = 0; i < 4; ++i) {
    instance.add_job(Job(MakeTree(TreeFamily::kSpiny, 300, rng), i * 7));
  }
  AlgAScheduler::Options options;
  options.beta = 4;  // aggressive restarts
  AlgAScheduler scheduler(options);
  const SimResult result = Simulate(instance, 8, scheduler);
  const auto report = ValidateSchedule(result.full_schedule(), instance);
  ASSERT_TRUE(report.feasible) << report.violation;
  EXPECT_GE(scheduler.restarts(), 1);
}

TEST(AlgAGeneral, BurstArrivalsAreUnionedPerVisibility) {
  Rng rng(10);
  Instance instance = MakeBurstyArrivals(
      3, 5, 9,
      [](std::int64_t, Rng& r) {
        return MakeTree(TreeFamily::kBranchy, 25, r);
      },
      rng);
  AlgAScheduler::Options options;
  options.beta = 16;
  AlgAScheduler scheduler(options);
  const SimResult result = Simulate(instance, 8, scheduler);
  ASSERT_TRUE(ValidateSchedule(result.full_schedule(), instance).feasible);
}

TEST(AlgAGeneral, FlowsAreMeasuredAgainstOriginalReleases) {
  // A tiny job held until the next guess multiple still pays its delay.
  Instance instance;
  instance.add_job(Job(MakeChain(1), 0));
  AlgAScheduler::Options options;
  options.initial_guess = 4;
  AlgAScheduler scheduler(options);
  const SimResult result = Simulate(instance, 4, scheduler);
  // Released at 0, visible at the multiple 0, runnable from slot 1.
  EXPECT_EQ(result.flows.max_flow, 1);

  Instance delayed;
  delayed.add_job(Job(MakeChain(1), 1));
  AlgAScheduler scheduler2(options);
  const SimResult result2 = Simulate(delayed, 4, scheduler2);
  // Released at 1, held until the multiple 4, runs at slot 5: flow 4.
  EXPECT_EQ(result2.flows.max_flow, 4);
}

}  // namespace
}  // namespace otsched
