// Tests for dag/serialize.h: text round-trip and DOT export.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dag/builders.h"
#include "dag/serialize.h"
#include "gen/random_trees.h"

namespace otsched {
namespace {

bool SameStructure(const Dag& a, const Dag& b) {
  if (a.node_count() != b.node_count() || a.edge_count() != b.edge_count()) {
    return false;
  }
  for (NodeId v = 0; v < a.node_count(); ++v) {
    std::vector<NodeId> ca(a.children(v).begin(), a.children(v).end());
    std::vector<NodeId> cb(b.children(v).begin(), b.children(v).end());
    std::sort(ca.begin(), ca.end());
    std::sort(cb.begin(), cb.end());
    if (ca != cb) return false;
  }
  return true;
}

TEST(Serialize, RoundTripChain) {
  const Dag chain = MakeChain(4);
  EXPECT_TRUE(SameStructure(chain, FromText(ToText(chain))));
}

TEST(Serialize, RoundTripRandomTree) {
  Rng rng(123);
  const Dag tree = MakeAttachmentTree(80, 0.3, rng);
  EXPECT_TRUE(SameStructure(tree, FromText(ToText(tree))));
}

TEST(Serialize, RoundTripEmptyAndSingle) {
  EXPECT_TRUE(SameStructure(Dag(), FromText("0\n")));
  EXPECT_TRUE(SameStructure(MakeChain(1), FromText("1\n")));
}

TEST(Serialize, ParserSkipsCommentsAndBlanks) {
  const Dag dag = FromText("# header comment\n\n3\n0 1 # inline\n\n1 2\n");
  EXPECT_EQ(dag.node_count(), 3);
  EXPECT_EQ(dag.edge_count(), 2);
}

TEST(Serialize, DotContainsAllEdges) {
  const std::string dot = ToDot(MakeChain(3), "chain");
  EXPECT_NE(dot.find("digraph chain"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n2"), std::string::npos);
}

TEST(Serialize, TextFormatHeaderIsNodeCount) {
  const std::string text = ToText(MakeStar(2));
  EXPECT_EQ(text.substr(0, 2), "3\n");
}

}  // namespace
}  // namespace otsched
