// Tests for sim/trace.h.
#include "gtest_compat.h"

#include <cstdio>
#include <fstream>

#include "dag/builders.h"
#include "sched/fifo.h"
#include "sched/list_greedy.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace otsched {
namespace {

Instance SmallInstance() {
  Instance instance;
  instance.add_job(Job(MakeChain(2), 0));
  instance.add_job(Job(MakeStar(2), 1));
  return instance;
}

TEST(Trace, DeriveOrdersEventsCanonically) {
  const Instance instance = SmallInstance();
  FifoScheduler fifo;
  const SimResult result = Simulate(instance, 2, fifo);
  const EventTrace trace = DeriveTrace(result.full_schedule(), instance);

  ASSERT_FALSE(trace.empty());
  // First event: job 0 arrives at slot 1.
  EXPECT_EQ(trace.events()[0].kind, TraceEventKind::kArrival);
  EXPECT_EQ(trace.events()[0].job, 0);
  EXPECT_EQ(trace.events()[0].slot, 1);
  // Arrivals: 2, executions: 5, completions: 2.
  EXPECT_EQ(trace.of_kind(TraceEventKind::kArrival).size(), 2u);
  EXPECT_EQ(trace.of_kind(TraceEventKind::kExecute).size(), 5u);
  EXPECT_EQ(trace.of_kind(TraceEventKind::kComplete).size(), 2u);
  // Slots are nondecreasing.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace.events()[i - 1].slot, trace.events()[i].slot);
  }
}

TEST(Trace, TextRoundTrip) {
  const Instance instance = SmallInstance();
  FifoScheduler fifo;
  const SimResult result = Simulate(instance, 2, fifo);
  const EventTrace trace = DeriveTrace(result.full_schedule(), instance);
  const EventTrace parsed = EventTrace::from_text(trace.to_text());
  EXPECT_EQ(trace, parsed);
  EXPECT_EQ(FirstDivergence(trace, parsed), -1);
}

TEST(Trace, IdenticalRunsDeriveIdenticalTraces) {
  const Instance instance = SmallInstance();
  FifoScheduler a;
  FifoScheduler b;
  const EventTrace ta =
      DeriveTrace(Simulate(instance, 2, a).full_schedule(), instance);
  const EventTrace tb =
      DeriveTrace(Simulate(instance, 2, b).full_schedule(), instance);
  EXPECT_EQ(ta, tb);
}

TEST(Trace, DivergenceIsLocalized) {
  const Instance instance = SmallInstance();
  FifoScheduler fifo;
  ListGreedyScheduler greedy(123);
  const EventTrace ta =
      DeriveTrace(Simulate(instance, 1, fifo).full_schedule(), instance);
  const EventTrace tb =
      DeriveTrace(Simulate(instance, 1, greedy).full_schedule(), instance);
  const std::int64_t d = FirstDivergence(ta, tb);
  if (d >= 0) {
    // Everything before the divergence matches by definition.
    for (std::int64_t i = 0; i < d; ++i) {
      EXPECT_EQ(ta.events()[static_cast<std::size_t>(i)],
                tb.events()[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(Trace, GoldenSmallFifoRun) {
  // Chain(2) at 0 and Star(2) at 1 under FIFO on m=2 — the canonical
  // trace, pinned.  Chain: nodes at slots 1, 2.  Star root at slot 2,
  // leaves at 3.
  const Instance instance = SmallInstance();
  FifoScheduler fifo;
  const SimResult result = Simulate(instance, 2, fifo);
  const EventTrace trace = DeriveTrace(result.full_schedule(), instance);
  EXPECT_EQ(trace.to_text(),
            "1 arrive 0\n"
            "1 exec 0 0\n"
            "2 arrive 1\n"
            "2 exec 0 1\n"
            "2 exec 1 0\n"
            "2 done 0\n"
            "3 exec 1 1\n"
            "3 exec 1 2\n"
            "3 done 1\n");
}

TEST(TraceDeath, MalformedTextRejected) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(EventTrace::from_text("1 frobnicate 0\n"), "bad kind");
  EXPECT_DEATH(EventTrace::from_text("nonsense\n"), "malformed");
}

TEST(Trace, TryFromTextAcceptsTheRoundTripFormat) {
  const std::string text =
      "1 arrive 0\n"
      "\n"
      "  \t \n"  // whitespace-only lines are skipped
      "1 exec 0 0\n"
      "2 done 0\n";
  std::string error;
  const auto trace = EventTrace::try_from_text(text, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  EXPECT_EQ(trace->size(), 3u);
  EXPECT_EQ(trace->events()[1].kind, TraceEventKind::kExecute);
  EXPECT_EQ(trace->events()[1].node, 0);
}

TEST(Trace, TryFromTextRejectsEveryMalformedShape) {
  struct Case {
    const char* text;
    const char* expect;  // substring of the diagnostic
  };
  const Case cases[] = {
      {"x arrive 0\n", "malformed slot"},          // non-numeric slot
      {"-3 arrive 0\n", "malformed slot"},         // negative slot
      {"0 arrive 0\n", "malformed slot"},          // slots are 1-based
      {"1 frobnicate 0\n", "bad kind"},            // unknown kind token
      {"1 exec 0\n", "missing node"},              // exec needs a node
      {"1 arrive\n", "malformed"},                 // missing job
      {"1 arrive 0 7\n", "trailing token"},        // extra field
      {"1 exec 0 1 2\n", "trailing token"},        // extra field on exec
      {"1 arrive -2\n", "malformed job id"},       // negative job
      {"1 exec 0 banana\n", "malformed node id"},  // non-numeric node
      {"1 arrive 99999999999999999999\n", "malformed job id"},  // overflow
      {"nonsense\n", "malformed"},                 // not even slot + kind
  };
  for (const Case& c : cases) {
    std::string error;
    const auto trace = EventTrace::try_from_text(c.text, &error);
    EXPECT_FALSE(trace.has_value()) << c.text;
    EXPECT_NE(error.find(c.expect), std::string::npos)
        << "input " << c.text << " produced diagnostic: " << error;
    EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  }
  // The diagnostic names the failing line, not just line 1.
  std::string error;
  EXPECT_FALSE(
      EventTrace::try_from_text("1 arrive 0\n1 exec 0 0\nbroken\n", &error)
          .has_value());
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

// ---- file-level symmetric I/O (to_file <-> try_from_file) ----

namespace {

/// A unique scratch path under the test temp dir; removed on scope exit.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_(::testing::TempDir() + name) {
    std::remove(path_.c_str());
  }
  ~ScratchFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace

TEST(TraceFile, ToFileRoundTripsThroughTryFromFile) {
  EventTrace trace;
  trace.add(TraceEvent{1, TraceEventKind::kArrival, 0, kInvalidNode});
  trace.add(TraceEvent{1, TraceEventKind::kExecute, 0, 3});
  trace.add(TraceEvent{2, TraceEventKind::kComplete, 0, kInvalidNode});

  ScratchFile file("trace_roundtrip.trace");
  std::string error;
  ASSERT_TRUE(trace.to_file(file.path(), &error)) << error;
  const auto loaded = EventTrace::try_from_file(file.path(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(*loaded, trace);
  EXPECT_EQ(loaded->to_text(), trace.to_text());
}

TEST(TraceFile, EmptyTraceRoundTripsToEmptyFile) {
  ScratchFile file("trace_empty.trace");
  std::string error;
  ASSERT_TRUE(EventTrace().to_file(file.path(), &error)) << error;
  const auto loaded = EventTrace::try_from_file(file.path(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(loaded->empty());
}

TEST(TraceFile, MissingFileDiagnosticNamesThePath) {
  std::string error;
  const auto loaded =
      EventTrace::try_from_file("/nonexistent/dir/nope.trace", &error);
  EXPECT_FALSE(loaded.has_value());
  EXPECT_NE(error.find("/nonexistent/dir/nope.trace"), std::string::npos)
      << error;
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(TraceFile, MalformedFileDiagnosticCarriesPathAndLine) {
  ScratchFile file("trace_malformed.trace");
  {
    std::ofstream out(file.path());
    out << "1 arrive 0\n1 frobnicate 0\n";
  }
  std::string error;
  const auto loaded = EventTrace::try_from_file(file.path(), &error);
  EXPECT_FALSE(loaded.has_value());
  // The file-level diagnostic keeps the per-line parse diagnostic and
  // prefixes the path: "<path>: trace line 2: bad kind ...".
  EXPECT_NE(error.find(file.path()), std::string::npos) << error;
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("bad kind"), std::string::npos) << error;
}

TEST(TraceFile, UnwritableDestinationReportsFailure) {
  EventTrace trace;
  trace.add(TraceEvent{1, TraceEventKind::kArrival, 0, kInvalidNode});
  std::string error;
  EXPECT_FALSE(trace.to_file("/nonexistent/dir/out.trace", &error));
  EXPECT_NE(error.find("/nonexistent/dir/out.trace"), std::string::npos)
      << error;
}

TEST(TraceFile, StreamedRunTraceSurvivesTheFileRoundTrip) {
  Instance instance;
  instance.add_job(Job(MakeChain(3), 0));
  instance.add_job(Job(MakeParallelBlob(4), 1));
  FifoScheduler fifo;
  const SimResult run = Simulate(instance, 2, fifo);
  const EventTrace derived = DeriveTrace(run.full_schedule(), instance);

  ScratchFile file("trace_run.trace");
  std::string error;
  ASSERT_TRUE(derived.to_file(file.path(), &error)) << error;
  const auto loaded = EventTrace::try_from_file(file.path(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(FirstDivergence(*loaded, derived), -1);
}

}  // namespace
}  // namespace otsched
