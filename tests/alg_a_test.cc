// Tests for core/alg_a.h: the semi-batched super-clairvoyant Algorithm A
// (Theorem 5.6).
#include "gtest_compat.h"

#include "core/alg_a.h"
#include "dag/builders.h"
#include "gen/certified.h"
#include "sim/validator.h"

namespace otsched {
namespace {

TEST(AlgASemiBatched, SingleBatchRunsLikeLpf) {
  Rng rng(11);
  const int m = 8;
  CertifiedInstance cert = MakeSpacedSaturatedInstance(m, 6, 1, rng);
  AlgASemiBatchedScheduler::Options options;
  options.known_opt = cert.opt % 2 == 0 ? cert.opt : cert.opt + 1;
  AlgASemiBatchedScheduler scheduler(options);
  const SimResult result = Simulate(cert.instance, m, scheduler);
  const auto report = ValidateSchedule(result.full_schedule(), cert.instance);
  EXPECT_TRUE(report.feasible) << report.violation;
  // One batch, head = LPF[m/4] for 2 windows, then MC with nearly the
  // whole machine: must finish within the Theorem 5.6 envelope easily.
  EXPECT_LE(result.flows.max_flow, 129 * options.known_opt);
}

class AlgASemiBatchedSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(AlgASemiBatchedSweep, FeasibleAndWithinTheorem56Bound) {
  const auto [m, batches, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 65537 + m);
  const Time delta = 4;
  CertifiedInstance cert =
      MakePipelinedSemiBatchedInstance(m, delta, batches, rng);
  ASSERT_EQ(cert.opt, 2 * delta);
  ASSERT_TRUE(cert.instance.is_batched(cert.opt / 2));

  AlgASemiBatchedScheduler::Options options;
  options.alpha = 4;
  options.known_opt = cert.opt;
  AlgASemiBatchedScheduler scheduler(options);
  const SimResult result = Simulate(cert.instance, m, scheduler);

  const auto report = ValidateSchedule(result.full_schedule(), cert.instance);
  ASSERT_TRUE(report.feasible) << report.violation;
  EXPECT_TRUE(result.flows.all_completed);
  // Theorem 5.6 guarantee: flow <= beta * OPT / 2 with beta = 258.
  EXPECT_LE(result.flows.max_flow, 129 * cert.opt)
      << "m=" << m << " batches=" << batches << " seed=" << seed;
  // Lemma 5.5 in action: the MC phase never wasted a granted processor.
  EXPECT_EQ(scheduler.mc_busy_violations(), 0);
  // The schedule never beats OPT (certified exact).
  EXPECT_GE(result.flows.max_flow, cert.opt);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgASemiBatchedSweep,
    ::testing::Combine(::testing::Values(4, 8, 16, 32),   // m
                       ::testing::Values(1, 3, 8),        // batches
                       ::testing::Values(1, 2)));

TEST(AlgASemiBatched, SaturatedBatchesStayConstantCompetitive) {
  // Spaced saturated batches (OPT = delta, work arrives at full machine
  // rate): measured ratio should be a small constant, far below 129.
  for (int m : {8, 16, 32}) {
    Rng rng(static_cast<std::uint64_t>(m));
    const Time delta = 6;
    CertifiedInstance cert = MakeSpacedSaturatedInstance(m, delta, 6, rng);
    // Releases are multiples of delta = OPT; that is also semi-batched
    // for known_opt = 2 * delta.
    AlgASemiBatchedScheduler::Options options;
    options.known_opt = 2 * delta;
    AlgASemiBatchedScheduler scheduler(options);
    const SimResult result = Simulate(cert.instance, m, scheduler);
    ASSERT_TRUE(ValidateSchedule(result.full_schedule(), cert.instance).feasible);
    const double ratio = static_cast<double>(result.flows.max_flow) /
                         static_cast<double>(cert.opt);
    EXPECT_LE(ratio, 20.0) << "m=" << m;
  }
}

TEST(AlgASemiBatchedDeath, RejectsOddOpt) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  AlgASemiBatchedScheduler::Options options;
  options.known_opt = 7;
  EXPECT_DEATH(AlgASemiBatchedScheduler{options}, "even");
}

TEST(AlgASemiBatchedDeath, RejectsNonSemiBatchedInstance) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Instance instance;
  instance.add_job(Job(MakeChain(2), 0));
  instance.add_job(Job(MakeChain(2), 3));  // not a multiple of OPT/2 = 2
  AlgASemiBatchedScheduler::Options options;
  options.known_opt = 4;
  AlgASemiBatchedScheduler scheduler(options);
  EXPECT_DEATH(Simulate(instance, 4, scheduler), "semi-batched");
}

TEST(AlgASemiBatchedDeath, RejectsGeneralDagJobs) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Instance instance;
  instance.add_job(Job(MakeForkJoin(3), 0));
  AlgASemiBatchedScheduler::Options options;
  options.known_opt = 4;
  AlgASemiBatchedScheduler scheduler(options);
  EXPECT_DEATH(Simulate(instance, 4, scheduler), "out-forest");
}

TEST(AlgAPlanner, AlphaMustDivideM) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(AlgAPlanner(10, 4, 3), "divide");
}

TEST(AlgASemiBatched, PerJobWidthNeverExceedsMOverAlpha) {
  // Structural signature of Algorithm A: both the LPF head replay and the
  // MC tail grants cap every batch at m/alpha processors per slot, so no
  // single job ever occupies more than m/alpha machines.
  Rng rng(21);
  const int m = 16;
  CertifiedInstance cert = MakePipelinedSemiBatchedInstance(m, 4, 6, rng);
  AlgASemiBatchedScheduler::Options options;
  options.known_opt = cert.opt;
  AlgASemiBatchedScheduler scheduler(options);
  const SimResult result = Simulate(cert.instance, m, scheduler);

  for (Time t = 1; t <= result.full_schedule().horizon(); ++t) {
    std::vector<int> per_job(static_cast<std::size_t>(
        cert.instance.job_count()));
    for (const SubjobRef& ref : result.full_schedule().at(t)) {
      ++per_job[static_cast<std::size_t>(ref.job)];
    }
    for (int count : per_job) {
      ASSERT_LE(count, m / options.alpha) << "slot " << t;
    }
  }
}

TEST(AlgASemiBatched, MultipleJobsPerBatchAreUnioned) {
  // Three jobs share each release; Algorithm A must treat them as one
  // batch (Section 5.3 convention) and still meet the bound.
  const int m = 8;
  const Time opt = 8;  // window 4
  Instance instance;
  Rng rng(3);
  for (int b = 0; b < 4; ++b) {
    for (int k = 0; k < 3; ++k) {
      instance.add_job(
          Job(MakeTree(TreeFamily::kMixed, 10, rng), b * (opt / 2)));
    }
  }
  AlgASemiBatchedScheduler::Options options;
  options.known_opt = opt;
  AlgASemiBatchedScheduler scheduler(options);
  const SimResult result = Simulate(instance, m, scheduler);
  ASSERT_TRUE(ValidateSchedule(result.full_schedule(), instance).feasible);
  EXPECT_LE(result.flows.max_flow, 129 * opt);
}

}  // namespace
}  // namespace otsched
