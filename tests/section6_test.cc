// Tests for analysis/section6.h: Lemma 6.4 and Proposition 6.2 hold on
// real FIFO schedules, and the checker actually detects violations.
#include "gtest_compat.h"

#include "analysis/section6.h"
#include "dag/builders.h"
#include "gen/certified.h"
#include "gen/fifo_adversary.h"
#include "sched/fifo.h"
#include "sim/engine.h"

namespace otsched {
namespace {

TEST(Section6, HoldsOnSingleChain) {
  Instance instance;
  instance.add_job(Job(MakeChain(5), 0));
  FifoScheduler fifo;
  const SimResult result = Simulate(instance, 2, fifo);
  const Section6Report report =
      CheckSection6Invariants(result.full_schedule(), instance, 2, /*opt=*/5);
  EXPECT_TRUE(report.all_hold()) << report.violation;
  EXPECT_EQ(report.max_z, 5);  // every slot of a lone chain is idle in S_0
}

class Section6SweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Section6SweepTest, HoldsOnCertifiedBatchedInstances) {
  const auto [m, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 10007 + m);
  const Time delta = 6;
  CertifiedInstance cert = MakeSpacedSaturatedInstance(m, delta, 6, rng);
  FifoScheduler fifo;
  const SimResult result = Simulate(cert.instance, m, fifo);
  const Section6Report report =
      CheckSection6Invariants(result.full_schedule(), cert.instance, m, cert.opt);
  EXPECT_TRUE(report.all_hold()) << report.violation;
  EXPECT_LE(report.max_z, cert.opt);
  EXPECT_LE(report.lemma64_tightness, 1.0 + 1e-9);
  EXPECT_GT(report.checks, 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Section6SweepTest,
                         ::testing::Combine(::testing::Values(2, 4, 8, 16),
                                            ::testing::Values(1, 2, 3, 4)));

TEST(Section6, HoldsOnTheAdversarialFamily) {
  // The Section 4 family is batched with OPT <= m+1, so the Section 6
  // invariants must hold for FIFO on it — they are what caps FIFO's
  // damage at O(log) there.
  LowerBoundSimOptions options;
  options.m = 8;
  options.num_jobs = 40;
  const AdversarialInstance adv = MakeAdversarialInstance(options);
  FifoScheduler::Options avoid;
  avoid.tie_break = FifoTieBreak::kAvoidMarked;
  avoid.deprioritize = [&adv](JobId job, NodeId node) {
    return adv.is_key(job, node);
  };
  FifoScheduler fifo(std::move(avoid));
  const SimResult result = Simulate(adv.instance, 8, fifo);
  const Section6Report report = CheckSection6Invariants(
      result.full_schedule(), adv.instance, 8, adv.fifo_run.certified_opt_upper);
  EXPECT_TRUE(report.all_hold()) << report.violation;
  // On this family the z budget gets heavily used (that's the point).
  EXPECT_GT(report.max_z, 1);
}

TEST(Section6, HoldsForGeneralDagJobs) {
  // Section 6 makes no tree assumption.
  Instance instance;
  instance.add_job(Job(MakeForkJoin(6), 0));
  instance.add_job(Job(MakeForkJoin(4), 0));
  FifoScheduler fifo;
  const SimResult result = Simulate(instance, 3, fifo);
  const Time opt = 6;  // loose upper bound is fine for the check
  const Section6Report report =
      CheckSection6Invariants(result.full_schedule(), instance, 3, opt);
  EXPECT_TRUE(report.all_hold()) << report.violation;
}

class Lemma65SweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Lemma65SweepTest, MainLemmaHoldsOnBatchedCertifiedRuns) {
  const auto [m, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 35317 + m);
  const Time delta = 5;
  CertifiedInstance cert = MakeSpacedSaturatedInstance(m, delta, 8, rng);
  FifoScheduler fifo;
  const SimResult result = Simulate(cert.instance, m, fifo);
  const Lemma65Report report =
      CheckLemma65(result.full_schedule(), cert.instance, m, cert.opt);
  EXPECT_TRUE(report.all_hold()) << report.violation;
  EXPECT_GT(report.inequalities_checked, 0);
  // Lemma 6.5's headline implication: at most log(tau) + 1 jobs alive at
  // any boundary.
  EXPECT_LE(report.max_alive_at_boundary, report.log_tau + 1);
  EXPECT_LE(report.part3_tightness, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Lemma65SweepTest,
                         ::testing::Combine(::testing::Values(2, 4, 8, 16),
                                            ::testing::Values(1, 2, 3)));

TEST(Lemma65, HoldsOnTheAdversarialFamily) {
  // The Section 4 family is batched with job i at i*(m+1); feed the
  // certificate m+1 as OPT.
  LowerBoundSimOptions options;
  options.m = 8;
  options.num_jobs = 60;
  const AdversarialInstance adv = MakeAdversarialInstance(options);
  FifoScheduler::Options avoid;
  avoid.tie_break = FifoTieBreak::kAvoidMarked;
  avoid.deprioritize = [&adv](JobId job, NodeId node) {
    return adv.is_key(job, node);
  };
  FifoScheduler fifo(std::move(avoid));
  const SimResult result = Simulate(adv.instance, 8, fifo);
  const Lemma65Report report = CheckLemma65(
      result.full_schedule(), adv.instance, 8, adv.fifo_run.certified_opt_upper);
  EXPECT_TRUE(report.all_hold()) << report.violation;
  // The family drives the alive-job count up (that is the attack), but
  // Lemma 6.5 still caps it at log(tau) + 1.
  EXPECT_GT(report.max_alive_at_boundary, 1);
  EXPECT_LE(report.max_alive_at_boundary, report.log_tau + 1);
}

TEST(Lemma65Death, RejectsNonConsecutiveBatches) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Instance instance;
  instance.add_job(Job(MakeChain(2), 0));
  instance.add_job(Job(MakeChain(2), 7));  // not 1 * opt for opt = 5
  Schedule schedule(2);
  schedule.place(1, {0, 0});
  schedule.place(2, {0, 1});
  schedule.place(8, {1, 0});
  schedule.place(9, {1, 1});
  EXPECT_DEATH(CheckLemma65(schedule, instance, 2, 5), "i\\*OPT");
}

TEST(Section6, DetectsFabricatedViolation) {
  // A schedule that parks the whole job behind idle time violates
  // Lemma 6.4 for a too-small claimed OPT: w stays high while z grows.
  Instance instance;
  instance.add_job(Job(MakeParallelBlob(8), 0));
  Schedule schedule(2);
  // Run one subjob per slot (the machine could do 2): S_0 is idle every
  // slot, so z grows by 1 per slot while 8 units of work linger.
  for (NodeId v = 0; v < 8; ++v) {
    schedule.place(v + 1, SubjobRef{0, v});
  }
  const Section6Report report =
      CheckSection6Invariants(schedule, instance, 2, /*opt=*/4);
  EXPECT_FALSE(report.all_hold());
  EXPECT_FALSE(report.violation.empty());
}

TEST(Section6, EmptyInstanceTrivial) {
  const Section6Report report =
      CheckSection6Invariants(Schedule(2), Instance(), 2, 1);
  EXPECT_TRUE(report.all_hold());
  EXPECT_EQ(report.checks, 0);
}

}  // namespace
}  // namespace otsched
