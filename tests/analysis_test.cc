// Tests for src/analysis: flow stats, ratio measurement, sweep helpers.
#include <gtest/gtest.h>

#include "analysis/flow_stats.h"
#include "analysis/instance_stats.h"
#include "analysis/ratio.h"
#include "analysis/sweep.h"
#include "dag/builders.h"
#include "gen/certified.h"
#include "sched/fifo.h"

namespace otsched {
namespace {

TEST(FlowStats, BasicPercentiles) {
  FlowSummary flows;
  flows.flow = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  flows.completion.assign(10, 1);
  flows.all_completed = true;
  flows.max_flow = 10;
  const FlowStats stats = ComputeFlowStats(flows);
  EXPECT_EQ(stats.jobs, 10);
  EXPECT_EQ(stats.min, 1);
  EXPECT_EQ(stats.max, 10);
  EXPECT_DOUBLE_EQ(stats.mean, 5.5);
  EXPECT_EQ(stats.p50, 6);  // nearest-rank on 0..9 indices
  EXPECT_EQ(stats.p90, 9);
  EXPECT_EQ(stats.total, 55);
}

TEST(FlowStats, SingleJob) {
  FlowSummary flows;
  flows.flow = {7};
  flows.all_completed = true;
  const FlowStats stats = ComputeFlowStats(flows);
  EXPECT_EQ(stats.max, 7);
  EXPECT_EQ(stats.p99, 7);
  EXPECT_NE(ToString(stats).find("max=7"), std::string::npos);
}

TEST(FlowStats, EmptyInstance) {
  FlowSummary flows;
  flows.all_completed = true;
  EXPECT_EQ(ComputeFlowStats(flows).jobs, 0);
}

TEST(Ratio, CertifiedDenominator) {
  Rng rng(1);
  CertifiedInstance cert = MakeSpacedSaturatedInstance(4, 3, 3, rng);
  FifoScheduler fifo;
  const RatioMeasurement r =
      MeasureRatio(cert.instance, 4, fifo, cert.opt);
  EXPECT_TRUE(r.denominator_exact);
  EXPECT_EQ(r.opt_denominator, cert.opt);
  EXPECT_GE(r.ratio, 1.0);
  EXPECT_EQ(r.m, 4);
  EXPECT_EQ(r.scheduler, "fifo/first-ready");
}

TEST(Ratio, LowerBoundDenominatorFallback) {
  Instance instance;
  instance.add_job(Job(MakeChain(5), 0));
  FifoScheduler fifo;
  const RatioMeasurement r = MeasureRatio(instance, 2, fifo);
  EXPECT_FALSE(r.denominator_exact);
  EXPECT_EQ(r.opt_denominator, 5);  // span bound
  EXPECT_DOUBLE_EQ(r.ratio, 1.0);   // FIFO is optimal on one chain
}

TEST(Sweep, ResultsComeBackInIndexOrder) {
  const auto results = BatchRunner(4).Map<std::size_t>(
      100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 100u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(Sweep, AggregateStatistics) {
  const SeedAggregate agg = Aggregate({1.0, 2.0, 3.0, 6.0});
  EXPECT_DOUBLE_EQ(agg.mean, 3.0);
  EXPECT_DOUBLE_EQ(agg.min, 1.0);
  EXPECT_DOUBLE_EQ(agg.max, 6.0);
  EXPECT_EQ(agg.count, 4u);
  EXPECT_EQ(Aggregate({}).count, 0u);
}

TEST(InstanceStats, DescribesLoadCorrectly) {
  Instance instance;
  instance.add_job(Job(MakeChain(4), 0));       // work 4, span 4
  instance.add_job(Job(MakeParallelBlob(12), 6));  // work 12, span 1
  const InstanceStats stats = ComputeInstanceStats(instance, 2);
  EXPECT_EQ(stats.jobs, 2);
  EXPECT_EQ(stats.total_work, 16);
  EXPECT_EQ(stats.min_work, 4);
  EXPECT_EQ(stats.max_work, 12);
  EXPECT_EQ(stats.max_span, 4);
  EXPECT_DOUBLE_EQ(stats.max_avg_parallelism, 12.0);
  EXPECT_EQ(stats.release_gcd, 6);
  // 16 work over a 7-slot arrival window on 2 processors.
  EXPECT_DOUBLE_EQ(stats.load_factor, 16.0 / 14.0);
  EXPECT_TRUE(stats.all_out_forests);
  EXPECT_NE(ToString(stats).find("2 jobs"), std::string::npos);
}

TEST(InstanceStats, EmptyInstance) {
  const InstanceStats stats = ComputeInstanceStats(Instance(), 4);
  EXPECT_EQ(stats.jobs, 0);
  EXPECT_EQ(stats.total_work, 0);
}

TEST(Sweep, DeterministicAcrossWorkerCounts) {
  auto cell = [](std::size_t i) {
    Rng rng(static_cast<std::uint64_t>(i));
    CertifiedInstance cert = MakeSpacedSaturatedInstance(4, 3, 2, rng);
    FifoScheduler fifo;
    return MeasureRatio(cert.instance, 4, fifo, cert.opt).ratio;
  };
  const auto serial = BatchRunner(1).Map<double>(6, cell);
  const auto parallel = BatchRunner(4).Map<double>(6, cell);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace otsched
