// The classical results the paper builds on, verified in this codebase:
//
//  * Graham 1969: any work-conserving (list) schedule of ONE job finishes
//    within W/m + P (so it is 2-competitive for makespan);
//  * Hu 1961 (via the related-work discussion): longest-path-first is
//    optimal for IN-forests too — checked against brute-force OPT;
//  * Bender et al. / Ambühl–Mastrolilli: FIFO on chains (sequential
//    jobs) is (3 - 2/m)-competitive — spot-checked in fifo_test.cc, here
//    property-swept;
//  * the span-reduction property from the introduction: when a
//    work-conserving schedule idles a processor, every alive job's
//    remaining span drops that slot.
#include <gtest/gtest.h>

#include "core/lpf.h"
#include "dag/builders.h"
#include "dag/validate.h"
#include "gen/arrivals.h"
#include "gen/random_trees.h"
#include "opt/brute_force.h"
#include "sched/fifo.h"
#include "sched/list_greedy.h"
#include "sim/validator.h"

namespace otsched {
namespace {

class GrahamBoundTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GrahamBoundTest, WorkConservingSingleJobWithinWOverMPlusSpan) {
  const auto [m, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 5261 + m);
  const Dag tree = MakeTree(static_cast<TreeFamily>(seed % 4), 150, rng);
  const auto metrics = ComputeMetrics(tree);
  Instance instance;
  instance.add_job(Job(Dag(tree), 0));

  ListGreedyScheduler greedy(static_cast<std::uint64_t>(seed));
  FifoScheduler fifo;
  for (Scheduler* scheduler : {static_cast<Scheduler*>(&greedy),
                               static_cast<Scheduler*>(&fifo)}) {
    const SimResult result = Simulate(instance, m, *scheduler);
    EXPECT_LE(result.flows.max_flow, metrics.work / m + metrics.span)
        << scheduler->name() << " m=" << m << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GrahamBoundTest,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Values(1, 2, 3, 4)));

TEST(HuInForests, LpfMatchesBruteForceOnInForests) {
  // Reverse random out-forests into in-forests; LPF (our implementation
  // works on any DAG) must equal the exhaustive optimum.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const Dag out_forest = MakeRandomForest(11, 2, 0.5, rng);
    const Dag in_forest = ReverseDag(out_forest);
    Instance instance;
    instance.add_job(Job(Dag(in_forest), 0));
    for (int m : {1, 2, 3}) {
      const Time exact = BruteForceOpt(instance, m);
      const Time lpf = BuildLpfSchedule(in_forest, m).length();
      EXPECT_EQ(lpf, exact) << "seed " << seed << " m " << m;
    }
  }
}

TEST(ReverseDagUtility, InvolutionAndDegreeSwap) {
  Rng rng(9);
  const Dag tree = MakeTree(TreeFamily::kBranchy, 60, rng);
  const Dag reversed = ReverseDag(tree);
  EXPECT_EQ(reversed.edge_count(), tree.edge_count());
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    EXPECT_EQ(reversed.in_degree(v), tree.out_degree(v));
    EXPECT_EQ(reversed.out_degree(v), tree.in_degree(v));
  }
  const Dag twice = ReverseDag(reversed);
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    std::vector<NodeId> a(tree.children(v).begin(), tree.children(v).end());
    std::vector<NodeId> b(twice.children(v).begin(),
                          twice.children(v).end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

class FifoChainsTest : public ::testing::TestWithParam<int> {};

TEST_P(FifoChainsTest, ThreeMinusTwoOverMOnRandomChainInstances) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed * 31337);
  Instance instance;
  std::int64_t budget = 16;  // keep brute force tractable
  Time release = 0;
  while (budget > 0) {
    const auto len = std::min<std::int64_t>(
        budget, 1 + static_cast<std::int64_t>(rng.next_below(5)));
    instance.add_job(Job(MakeChain(static_cast<NodeId>(len)), release));
    budget -= len;
    release += static_cast<Time>(rng.next_below(3));
  }
  for (int m : {2, 3}) {
    const Time opt = BruteForceOpt(instance, m);
    FifoScheduler fifo;
    const SimResult result = Simulate(instance, m, fifo);
    EXPECT_LE(static_cast<double>(result.flows.max_flow),
              (3.0 - 2.0 / m) * static_cast<double>(opt) + 1e-9)
        << "seed " << seed << " m " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FifoChainsTest, ::testing::Range(1, 11));

TEST(SpanReduction, IdleSlotsReduceEveryAliveJobsRemainingSpan) {
  // The introduction's "span reduction property": if a work-conserving
  // scheduler idles a processor at slot t, every unfinished (arrived)
  // job had ALL its ready subjobs scheduled, so its remaining critical
  // path shortens by one.  We instrument FIFO and check remaining span
  // (max height over unexecuted ready nodes) drops across idle slots.
  Rng rng(4);
  Instance instance = MakePoissonArrivals(
      8, 0.1,
      [](std::int64_t, Rng& r) { return MakeTree(TreeFamily::kMixed, 30, r); },
      rng);
  const int m = 3;

  class Probe : public Scheduler {
   public:
    std::string name() const override { return "span-probe"; }
    bool requires_clairvoyance() const override { return true; }
    void pick(const SchedulerView& view,
              std::vector<SubjobRef>& out) override {
      // Record each alive job's remaining span before the slot.
      std::vector<std::pair<JobId, std::int32_t>> spans;
      std::int64_t total_ready = 0;
      for (JobId job : view.alive()) {
        std::int32_t span = 0;
        const auto& height = view.metrics(job).height;
        for (NodeId v : view.ready(job)) {
          span = std::max(span, height[static_cast<std::size_t>(v)]);
        }
        spans.emplace_back(job, span);
        total_ready += static_cast<std::int64_t>(view.ready(job).size());
      }
      // FIFO picks.
      fifo_.pick(view, out);
      // Idle slot: fewer picks than machines.
      if (!out.empty() && static_cast<int>(out.size()) < view.m()) {
        EXPECT_EQ(static_cast<std::int64_t>(out.size()), total_ready);
        // Every ready subjob of every alive job runs, so each alive
        // job's remaining span strictly drops (its current critical-path
        // head executes).
        for (const auto& [job, span] : spans) {
          if (span == 0) continue;
          std::int64_t picked_of_job = 0;
          for (const SubjobRef& ref : out) {
            if (ref.job == job) ++picked_of_job;
          }
          EXPECT_EQ(picked_of_job,
                    static_cast<std::int64_t>(view.ready(job).size()))
              << "job " << job;
          ++verified_;
        }
      }
    }
    std::int64_t verified() const { return verified_; }

   private:
    FifoScheduler fifo_;
    std::int64_t verified_ = 0;
  } probe;

  const SimResult result = Simulate(instance, m, probe);
  EXPECT_TRUE(result.flows.all_completed);
  EXPECT_GT(probe.verified(), 0);
}

}  // namespace
}  // namespace otsched
