// Soak test: a long mixed stream through every scheduler, with every
// cross-cutting invariant checked on each run.  Sized to stay inside the
// normal ctest budget while still exercising thousands of slots and all
// job shapes at once.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/section6.h"
#include "core/alg_a_full.h"
#include "core/lpf.h"
#include "gen/arrivals.h"
#include "gen/numerics.h"
#include "gen/random_trees.h"
#include "gen/recursive.h"
#include "gen/series_parallel.h"
#include "opt/lower_bounds.h"
#include "sched/fifo.h"
#include "sched/list_greedy.h"
#include "sched/remaining_work.h"
#include "sched/round_robin.h"
#include "sched/work_stealing.h"
#include "sim/trace.h"
#include "sim/validator.h"

namespace otsched {
namespace {

Instance MixedSoakInstance(std::uint64_t seed, bool trees_only) {
  Rng rng(seed);
  return MakePoissonArrivals(
      40, 0.04,
      [trees_only](std::int64_t i, Rng& r) -> Dag {
        switch (i % (trees_only ? 4 : 7)) {
          case 0:
            return MakeTree(TreeFamily::kBushy,
                            static_cast<NodeId>(20 + r.next_below(120)), r);
          case 1: {
            QuicksortOptions q;
            q.n = 400 + static_cast<std::int64_t>(r.next_below(800));
            q.grain = 40;
            q.cutoff = 40;
            return MakeQuicksortTree(q, r);
          }
          case 2:
            return MakeRandomParallelForSeries(
                3 + static_cast<int>(r.next_below(4)), 20, r);
          case 3:
            return MakeTree(TreeFamily::kSpiny,
                            static_cast<NodeId>(20 + r.next_below(60)), r);
          case 4: {
            SeriesParallelOptions sp;
            sp.size = static_cast<NodeId>(30 + r.next_below(80));
            return MakeSeriesParallelDag(sp, r);
          }
          case 5:
            return MakeTiledCholeskyDag(3 +
                                        static_cast<int>(r.next_below(4)));
          default:
            return MakeStencil1dDag(6 + static_cast<int>(r.next_below(10)),
                                    4 + static_cast<int>(r.next_below(6)));
        }
      },
      rng);
}

TEST(Soak, EverySchedulerSurvivesTheMixedStream) {
  const Instance general = MixedSoakInstance(314159, /*trees_only=*/false);
  const Instance trees = MixedSoakInstance(271828, /*trees_only=*/true);
  const int m = 8;

  struct Entry {
    std::unique_ptr<Scheduler> scheduler;
    bool trees_only;  // Algorithm A's strict mode needs out-forests
  };
  std::vector<Entry> entries;
  entries.push_back({std::make_unique<FifoScheduler>(), false});
  {
    FifoScheduler::Options o;
    o.tie_break = FifoTieBreak::kLastReady;
    entries.push_back({std::make_unique<FifoScheduler>(std::move(o)), false});
  }
  {
    FifoScheduler::Options o;
    o.tie_break = FifoTieBreak::kRandom;
    o.seed = 5;
    entries.push_back({std::make_unique<FifoScheduler>(std::move(o)), false});
  }
  entries.push_back({std::make_unique<ListGreedyScheduler>(5), false});
  entries.push_back({std::make_unique<RoundRobinScheduler>(), false});
  entries.push_back({std::make_unique<WorkStealingScheduler>(), false});
  entries.push_back({std::make_unique<GlobalLpfScheduler>(), false});
  entries.push_back({std::make_unique<RemainingWorkScheduler>(
                         RemainingWorkOrder::kSmallestFirst),
                     false});
  {
    AlgAScheduler::Options o;
    o.beta = 16;
    entries.push_back({std::make_unique<AlgAScheduler>(o), true});
    AlgAScheduler::Options g = o;
    g.allow_general_dags = true;
    entries.push_back({std::make_unique<AlgAScheduler>(g), false});
  }

  for (Entry& entry : entries) {
    const Instance& instance = entry.trees_only ? trees : general;
    const SimResult result = Simulate(instance, m, *entry.scheduler);
    const auto report = ValidateSchedule(result.full_schedule(), instance);
    ASSERT_TRUE(report.feasible)
        << entry.scheduler->name() << ": " << report.violation;
    ASSERT_TRUE(result.flows.all_completed) << entry.scheduler->name();
    EXPECT_EQ(result.stats.executed_subjobs, instance.total_work());
    // Sanity: nobody is worse than fully serial.
    EXPECT_LE(result.flows.max_flow,
              instance.total_work() + instance.max_release());
  }
}

TEST(Soak, FifoRunsAreReproducibleViaTraces) {
  const Instance instance = MixedSoakInstance(999, false);
  FifoScheduler a;
  FifoScheduler b;
  const EventTrace ta =
      DeriveTrace(Simulate(instance, 8, a).full_schedule(), instance);
  const EventTrace tb =
      DeriveTrace(Simulate(instance, 8, b).full_schedule(), instance);
  EXPECT_EQ(FirstDivergence(ta, tb), -1);
}

TEST(Soak, Section6InvariantsHoldOnTheLongStream) {
  // Lemma 6.4 and Proposition 6.2 are FIFO-specific but need no batched
  // assumption (batching only enters Theorem 6.1's induction).  They
  // hold against the true OPT, hence against any upper bound on it; the
  // flow FIFO itself achieves is always such an upper bound.
  const Instance instance = MixedSoakInstance(777, false);
  const int m = 8;
  FifoScheduler fifo;
  const SimResult result = Simulate(instance, m, fifo);
  const Section6Report report = CheckSection6Invariants(
      result.full_schedule(), instance, m, result.flows.max_flow);
  EXPECT_TRUE(report.all_hold()) << report.violation;
  EXPECT_GT(report.checks, 1000);
}

}  // namespace
}  // namespace otsched
