// Tests for sim/svg.h.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "dag/builders.h"
#include "sched/fifo.h"
#include "sim/engine.h"
#include "sim/svg.h"

namespace otsched {
namespace {

std::size_t CountOccurrences(const std::string& haystack,
                             const std::string& needle) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

SimResult RunSmallFifo(Instance& instance) {
  instance.add_job(Job(MakeStar(3), 0));
  instance.add_job(Job(MakeChain(2), 1));
  FifoScheduler fifo;
  return Simulate(instance, 3, fifo);
}

TEST(Svg, DocumentStructure) {
  Instance instance;
  const SimResult result = RunSmallFifo(instance);
  const std::string svg = RenderScheduleSvg(result.full_schedule(), instance);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One rect per placed subjob, plus background and grid rects.
  EXPECT_EQ(CountOccurrences(svg, "<rect"),
            static_cast<std::size_t>(result.full_schedule().total_placed()) + 2);
}

TEST(Svg, DistinctJobsGetDistinctColors) {
  EXPECT_NE(JobColor(0), JobColor(1));
  EXPECT_NE(JobColor(1), JobColor(2));
  // Color format is #rrggbb.
  EXPECT_EQ(JobColor(0).size(), 7u);
  EXPECT_EQ(JobColor(0)[0], '#');
}

TEST(Svg, TitleAndLabelsAppearWhenRequested) {
  Instance instance;
  const SimResult result = RunSmallFifo(instance);
  SvgOptions options;
  options.title = "figure one";
  options.label_nodes = true;
  const std::string svg =
      RenderScheduleSvg(result.full_schedule(), instance, options);
  EXPECT_NE(svg.find("figure one"), std::string::npos);
  // Node labels are text elements beyond the axis labels.
  EXPECT_GT(CountOccurrences(svg, "<text"),
            static_cast<std::size_t>(result.full_schedule().m()));
}

TEST(Svg, SlotWindowClips) {
  Instance instance;
  const SimResult result = RunSmallFifo(instance);
  SvgOptions options;
  options.from_slot = 1;
  options.to_slot = 1;
  const std::string svg =
      RenderScheduleSvg(result.full_schedule(), instance, options);
  // Slot 1 runs exactly one subjob (the star root; the chain arrives at
  // slot 2).
  EXPECT_EQ(CountOccurrences(svg, "<rect"), 1u + 2u);
}

TEST(Svg, SaveWritesFile) {
  Instance instance;
  const SimResult result = RunSmallFifo(instance);
  const std::string path = ::testing::TempDir() + "/otsched_svg_test.svg";
  SaveScheduleSvg(result.full_schedule(), instance, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("<svg"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace otsched
