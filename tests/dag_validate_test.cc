// Tests for dag/validate.h: acyclicity, out-tree / out-forest detection.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dag/builders.h"
#include "dag/validate.h"
#include "gen/random_trees.h"

namespace otsched {
namespace {

TEST(Validate, EmptyDagIsAcyclicForestButNotTree) {
  const Dag empty;
  EXPECT_TRUE(IsAcyclic(empty));
  EXPECT_TRUE(IsOutForest(empty));
  EXPECT_FALSE(IsOutTree(empty));
}

TEST(Validate, ChainIsOutTree) {
  EXPECT_TRUE(IsOutTree(MakeChain(4)));
  EXPECT_TRUE(IsOutForest(MakeChain(4)));
}

TEST(Validate, BlobIsForestNotTree) {
  EXPECT_TRUE(IsOutForest(MakeParallelBlob(3)));
  EXPECT_FALSE(IsOutTree(MakeParallelBlob(3)));
  EXPECT_TRUE(IsOutTree(MakeParallelBlob(1)));
}

TEST(Validate, ForkJoinIsAcyclicButNotForest) {
  const Dag diamond = MakeForkJoin(2);
  EXPECT_TRUE(IsAcyclic(diamond));
  EXPECT_FALSE(IsOutForest(diamond));
  EXPECT_FALSE(IsOutTree(diamond));
}

TEST(Validate, PureCycleIsDetected) {
  // In-degrees are all 1, so the forest check must rely on acyclicity.
  const std::vector<std::pair<NodeId, NodeId>> edges = {
      {0, 1}, {1, 2}, {2, 0}};
  const Dag cycle = MakeFromEdges(3, edges);
  EXPECT_FALSE(IsAcyclic(cycle));
  EXPECT_FALSE(IsOutForest(cycle));
}

TEST(Validate, CycleReachableFromDagPart) {
  const std::vector<std::pair<NodeId, NodeId>> edges = {
      {0, 1}, {1, 2}, {2, 1}};
  EXPECT_FALSE(IsAcyclic(MakeFromEdges(3, edges)));
}

TEST(Validate, AnalyzeShapeReportsDegrees) {
  const DagShape shape = AnalyzeShape(MakeStar(5));
  EXPECT_TRUE(shape.acyclic);
  EXPECT_TRUE(shape.out_forest);
  EXPECT_EQ(shape.root_count, 1);
  EXPECT_EQ(shape.max_out_degree, 5);
  EXPECT_EQ(shape.max_in_degree, 1);
}

TEST(Validate, DescribeShapeMentionsKind) {
  EXPECT_NE(DescribeShape(MakeChain(3)).find("out-tree"), std::string::npos);
  EXPECT_NE(DescribeShape(MakeParallelBlob(2)).find("out-forest"),
            std::string::npos);
  EXPECT_NE(DescribeShape(MakeForkJoin(2)).find("general DAG"),
            std::string::npos);
  const std::vector<std::pair<NodeId, NodeId>> loop = {{0, 1}, {1, 0}};
  EXPECT_NE(DescribeShape(MakeFromEdges(2, loop)).find("cyclic"),
            std::string::npos);
}

TEST(Validate, AllGeneratorTreesAreOutTrees) {
  Rng rng(99);
  for (int seed = 0; seed < 10; ++seed) {
    for (TreeFamily family : {TreeFamily::kBushy, TreeFamily::kMixed,
                              TreeFamily::kSpiny, TreeFamily::kBranchy}) {
      EXPECT_TRUE(IsOutTree(MakeTree(family, 50, rng)))
          << ToString(family) << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace otsched
