// Tests for sim/faults.h: the BudgetTrace CSV format and its
// diagnostics, the FaultSpec shorthand parser, the counter-based
// determinism contract of the stochastic models, trace materialization,
// and — the acceptance gate — the Lemma 5.5 no-waste oracle
// (kMCNoWasteUnderFaults) over >= 1000 fuzzed budget traces.
#include "gtest_compat.h"

#include <algorithm>
#include <string>
#include <vector>

#include "check/oracles.h"
#include "common/rng.h"
#include "core/lpf.h"
#include "dag/builders.h"
#include "gen/random_trees.h"
#include "opt/flow_network.h"
#include "opt/single_batch.h"
#include "sim/faults.h"

namespace otsched {
namespace {

// ---- BudgetTrace CSV ----

TEST(BudgetTrace, CsvRoundTripPreservesEveryEntry) {
  BudgetTrace trace;
  trace.set(1, 0);
  trace.set(4, 2);
  trace.set(9, 1);
  const std::string csv = trace.to_csv();
  std::string error;
  const std::optional<BudgetTrace> back =
      BudgetTrace::try_from_csv(csv, &error);
  ASSERT_TRUE(back.has_value()) << error;
  ASSERT_EQ(back->entry_count(), 3u);
  EXPECT_EQ(back->entry(0), (std::pair<Time, int>{1, 0}));
  EXPECT_EQ(back->entry(1), (std::pair<Time, int>{4, 2}));
  EXPECT_EQ(back->entry(2), (std::pair<Time, int>{9, 1}));
  EXPECT_EQ(back->to_csv(), csv);
}

TEST(BudgetTrace, CsvSkipsCommentsBlanksAndHeader) {
  std::string error;
  const std::optional<BudgetTrace> trace = BudgetTrace::try_from_csv(
      "# an outage plan\n\nslot,capacity\n3,1\n\n# recovery below\n7,0\n",
      &error);
  ASSERT_TRUE(trace.has_value()) << error;
  EXPECT_EQ(trace->entry_count(), 2u);
  EXPECT_EQ(trace->length(), 7);
}

TEST(BudgetTrace, CsvDiagnosticsNameTheOffendingLine) {
  std::string error;
  EXPECT_FALSE(BudgetTrace::try_from_csv("3,1\nnot-a-row\n", &error)
                   .has_value());
  EXPECT_NE(error.find("budget csv line 2"), std::string::npos) << error;

  EXPECT_FALSE(BudgetTrace::try_from_csv("5,2\n5,1\n", &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("strictly after"), std::string::npos) << error;

  EXPECT_FALSE(BudgetTrace::try_from_csv("0,1\n", &error).has_value());
  EXPECT_NE(error.find("want integer >= 1"), std::string::npos) << error;

  EXPECT_FALSE(BudgetTrace::try_from_csv("2,-1\n", &error).has_value());
  EXPECT_NE(error.find("capacity"), std::string::npos) << error;

  EXPECT_FALSE(BudgetTrace::try_from_csv("2,1,9\n", &error).has_value());
  EXPECT_NE(error.find("trailing field"), std::string::npos) << error;
}

TEST(BudgetTrace, UnpinnedSlotsRunAtFullCapacityAndPinsClampToM) {
  BudgetTrace trace;
  trace.set(2, 0);
  trace.set(5, 99);  // Pinned above m: clamps down to m at query time.
  EXPECT_EQ(trace.capacity_at(1, 4), 4);  // Gap before the first pin.
  EXPECT_EQ(trace.capacity_at(2, 4), 0);
  EXPECT_EQ(trace.capacity_at(3, 4), 4);  // Gap between pins.
  EXPECT_EQ(trace.capacity_at(5, 4), 4);
  EXPECT_EQ(trace.capacity_at(1000, 4), 4);  // Beyond the trace: recovered.
}

// ---- FaultSpec shorthand ----

TEST(FaultSpec, ParsesShorthandFields) {
  std::string error;
  const std::optional<FaultSpec> spec =
      ParseFaultSpec("random-blip:7:0.3", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->model, FaultModel::kRandomBlip);
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_DOUBLE_EQ(spec->rate, 0.3);
  EXPECT_TRUE(spec->active());

  const std::optional<FaultSpec> bare = ParseFaultSpec("none", &error);
  ASSERT_TRUE(bare.has_value());
  EXPECT_FALSE(bare->active());

  // adversarial-dip's third field is the floor, not a rate.
  const std::optional<FaultSpec> dip =
      ParseFaultSpec("adversarial-dip:3:1", &error);
  ASSERT_TRUE(dip.has_value()) << error;
  EXPECT_EQ(dip->model, FaultModel::kAdversarialDip);
  EXPECT_EQ(dip->floor, 1);
}

TEST(FaultSpec, RejectsMalformedShorthand) {
  std::string error;
  EXPECT_FALSE(ParseFaultSpec("meteor-strike", &error).has_value());
  EXPECT_NE(error.find("unknown fault model"), std::string::npos) << error;

  EXPECT_FALSE(ParseFaultSpec("trace", &error).has_value());
  EXPECT_NE(error.find("CSV file"), std::string::npos) << error;

  EXPECT_FALSE(ParseFaultSpec("random-blip:1:0.95", &error).has_value());
  EXPECT_NE(error.find("[0, 0.9]"), std::string::npos) << error;

  EXPECT_FALSE(ParseFaultSpec("random-blip:x", &error).has_value());
  EXPECT_NE(error.find("seed"), std::string::npos) << error;

  EXPECT_FALSE(ParseFaultSpec("burst-outage:1:0.2:16", &error).has_value());
  EXPECT_NE(error.find("too many"), std::string::npos) << error;
}

TEST(FaultSpec, ToStringMatchesManifestShorthand) {
  FaultSpec blip;
  blip.model = FaultModel::kRandomBlip;
  blip.seed = 9;
  blip.rate = 0.5;
  EXPECT_EQ(ToString(blip), "random-blip:9:0.5");
  EXPECT_EQ(ToString(FaultSpec{}), "none");

  BudgetTrace trace;
  trace.set(3, 1);
  trace.set(8, 0);
  FaultSpec traced;
  traced.model = FaultModel::kTrace;
  traced.trace = &trace;
  EXPECT_EQ(ToString(traced), "trace:2 entries");
}

// ---- BudgetSequencer determinism ----

TEST(BudgetSequencer, StochasticCapacityIsAPureFunctionOfSeedAndSlot) {
  for (const FaultModel model :
       {FaultModel::kRandomBlip, FaultModel::kBurstOutage}) {
    FaultSpec spec;
    spec.model = model;
    spec.seed = 42;
    spec.rate = 0.4;
    spec.burst_len = 3;
    const int m = 6;

    // Forward sweep, reverse sweep, and a fresh per-slot sequencer must
    // agree on every slot: capacity is counter-based, never visit-order
    // dependent (the contract that keeps both engines bit-identical).
    std::vector<int> forward;
    BudgetSequencer fwd(spec, m);
    for (Time slot = 1; slot <= 200; ++slot) {
      forward.push_back(fwd.capacity(slot, 0));
    }
    BudgetSequencer rev(spec, m);
    for (Time slot = 200; slot >= 1; --slot) {
      EXPECT_EQ(rev.capacity(slot, 0),
                forward[static_cast<std::size_t>(slot - 1)])
          << ToString(model) << " slot " << slot;
    }
    for (Time slot = 1; slot <= 200; slot += 17) {
      BudgetSequencer fresh(spec, m);
      EXPECT_EQ(fresh.capacity(slot, 0),
                forward[static_cast<std::size_t>(slot - 1)])
          << ToString(model) << " slot " << slot;
    }

    // A different seed must produce a different stream somewhere (sanity
    // that the seed is actually mixed in).
    FaultSpec other = spec;
    other.seed = 43;
    BudgetSequencer alt(other, m);
    bool diverged = false;
    for (Time slot = 1; slot <= 200 && !diverged; ++slot) {
      diverged = alt.capacity(slot, 0) !=
                 forward[static_cast<std::size_t>(slot - 1)];
    }
    EXPECT_TRUE(diverged) << ToString(model);
  }
}

TEST(BudgetSequencer, AdversarialDipStarvesOnlyAtNewAlivePeaks) {
  FaultSpec spec;
  spec.model = FaultModel::kAdversarialDip;
  spec.floor = 0;
  BudgetSequencer sequencer(spec, 4);
  EXPECT_EQ(sequencer.capacity(1, 1), 0);  // First peak: starve.
  EXPECT_EQ(sequencer.capacity(2, 1), 4);  // Held peak: recover.
  EXPECT_EQ(sequencer.capacity(3, 3), 0);  // New peak: starve again.
  EXPECT_EQ(sequencer.capacity(4, 2), 4);  // Below peak: full capacity.
  EXPECT_EQ(sequencer.capacity(5, 3), 4);  // Ties are not new peaks.
}

TEST(MaterializeBudgetTrace, FrozenTraceReplaysTheStochasticStream) {
  FaultSpec spec;
  spec.model = FaultModel::kBurstOutage;
  spec.seed = 11;
  spec.rate = 0.5;
  spec.burst_len = 4;
  const int m = 5;
  const Time horizon = 300;
  const BudgetTrace trace = MaterializeBudgetTrace(spec, m, horizon);
  EXPECT_GT(trace.entry_count(), 0u);  // rate 0.5 over 75 windows: outages.

  FaultSpec traced;
  traced.model = FaultModel::kTrace;
  traced.trace = &trace;
  BudgetSequencer original(spec, m);
  BudgetSequencer frozen(traced, m);
  for (Time slot = 1; slot <= horizon; ++slot) {
    EXPECT_EQ(frozen.capacity(slot, 0), original.capacity(slot, 0))
        << "slot " << slot;
  }
}

// ---- Lemma 5.5 on fuzzed budget traces (the acceptance gate) ----

/// Derives a fault spec from the case counter: cycles through every
/// model (including explicit traces frozen from a blip stream) with
/// varying rates, burst lengths and floors.
FaultSpec FuzzSpec(std::uint64_t i, BudgetTrace* trace_storage, int p) {
  FaultSpec spec;
  spec.seed = 0x9E3779B9u ^ (i * 2654435761u);
  spec.rate = 0.1 + 0.1 * static_cast<double>(i % 8);  // [0.1, 0.8]
  spec.burst_len = 1 + static_cast<Time>(i % 6);
  spec.floor = static_cast<int>(i % 3 == 0 ? 1 : 0);
  switch (i % 4) {
    case 0:
      spec.model = FaultModel::kRandomBlip;
      break;
    case 1:
      spec.model = FaultModel::kBurstOutage;
      break;
    case 2:
      spec.model = FaultModel::kAdversarialDip;
      break;
    default: {
      FaultSpec source;
      source.model = FaultModel::kRandomBlip;
      source.seed = spec.seed;
      source.rate = spec.rate;
      *trace_storage = MaterializeBudgetTrace(source, p, 512);
      spec.model = FaultModel::kTrace;
      spec.trace = trace_storage;
      break;
    }
  }
  return spec;
}

TEST(McNoWasteUnderFaults, HoldsOnOverOneThousandFuzzedBudgetTraces) {
  // Mirrors the fuzz harness's Lemma 5.5 leg: MC replays the packed tail
  // of LPF[p] (head pre-executed, Algorithm A's usage) under a fuzzed
  // budget stream with mid-run zero-capacity outages.  The lemma never
  // assumes the budget stream's shape, so every replay must verify.
  constexpr int kAlpha = 4;
  std::size_t replays = 0;
  for (std::uint64_t i = 0; replays < 1000; ++i) {
    ASSERT_LT(i, 4000u) << "tree pool exhausted before 1000 replays";
    Rng rng(1000 + i);
    const NodeId nodes = 14 + static_cast<NodeId>(i % 40);
    const Dag dag = MakeTree(static_cast<TreeFamily>(i % 4), nodes, rng);
    const int m = 4 + static_cast<int>(i % 7);
    const int p = (m + kAlpha - 1) / kAlpha;
    const JobSchedule reduced = BuildLpfSchedule(dag, p);
    const Time prefix =
        std::min<Time>(SingleBatchOpt(dag, m), reduced.length());
    if (reduced.length() <= prefix) continue;  // Job done within the head.

    BudgetTrace trace_storage;
    const FaultSpec faults = FuzzSpec(i, &trace_storage, p);
    const McReplayLog log =
        RunMostChildrenFaultLog(dag, reduced, faults, p, prefix);
    const OracleResult verdict =
        CheckMcNoWasteUnderFaultsOracle(dag, reduced, log);
    ASSERT_TRUE(verdict.ok)
        << "case " << i << " (" << ToString(faults) << ", p=" << p
        << "): " << verdict.detail;
    EXPECT_EQ(verdict.id, OracleId::kMCNoWasteUnderFaults);
    ++replays;
  }
  EXPECT_GE(replays, 1000u);
}

// ---- certified lower bounds over budget traces (kOptLowerBound) ----

TEST(BudgetTrace, CapacitySumMatchesPerSlotQueries) {
  BudgetTrace trace;
  trace.set(2, 0);
  trace.set(3, 1);
  trace.set(7, 9);  // clamps to m
  for (int m : {1, 2, 4}) {
    for (Time first = 1; first <= 9; ++first) {
      for (Time last = first - 1; last <= 10; ++last) {
        std::int64_t expected = 0;
        for (Time t = first; t <= last; ++t) {
          expected += trace.capacity_at(t, m);
        }
        EXPECT_EQ(trace.capacity_sum(first, last, m), expected)
            << "m=" << m << " [" << first << ", " << last << "]";
      }
    }
  }
  EXPECT_EQ(SlotCapacitySum(nullptr, 3, 7, 2), 10);
  // Slots 3..7 on m=2: pin 3 -> 1, pin 7 clamps to 2, rest healthy.
  EXPECT_EQ(SlotCapacitySum(&trace, 3, 7, 2), 9);
}

TEST(OptLowerBoundUnderFaults, FlowBoundChargesPerSlotCapacityExactly) {
  // A 6-unit blob on m = 2 with slots 1..3 fully stalled (m_t = 0): the
  // first usable slot is 4, so OPT >= 3 + ceil(6/2) = 6 — and the flow
  // bound must find exactly that, not the healthy ceil(6/2) = 3.
  Instance instance;
  instance.add_job(Job(MakeParallelBlob(6), 0));
  BudgetTrace stall;
  stall.set(1, 0);
  stall.set(2, 0);
  stall.set(3, 0);
  const Certificate healthy = MaxFlowCertificate(instance, 2);
  EXPECT_EQ(healthy.value, 3);
  const Certificate faulted = MaxFlowCertificate(instance, 2, &stall);
  EXPECT_EQ(faulted.value, 6);
  EXPECT_TRUE(faulted.verify(instance, &stall));
  // The witness must be rejected if replayed against the healthy
  // machine, where those slots supply 2 processors each.
  EXPECT_FALSE(faulted.verify(instance));
}

TEST(OptLowerBoundUnderFaults, MidRunStallsLengthenTheBound) {
  // Chain of 3 on m = 1 with slot 2 stalled: the chain needs three
  // usable slots with a hole at 2 -> OPT >= 4.
  Instance instance;
  instance.add_job(Job(MakeChain(3), 0));
  BudgetTrace stall;
  stall.set(2, 0);
  EXPECT_EQ(MaxFlowCertificate(instance, 1).value, 3);
  EXPECT_EQ(MaxFlowCertificate(instance, 1, &stall).value, 4);
}

TEST(OptLowerBoundUnderFaults, PartialCapacityCountsFractionally) {
  // 8 units on m = 4, slots 1 and 2 pinned to capacity 1: supply is
  // 1 + 1 + 4 + ... -> need slots through 4 - bound 4 vs healthy 2.
  Instance instance;
  instance.add_job(Job(MakeParallelBlob(8), 0));
  BudgetTrace degraded;
  degraded.set(1, 1);
  degraded.set(2, 1);
  EXPECT_EQ(MaxFlowCertificate(instance, 4).value, 2);
  EXPECT_EQ(MaxFlowCertificate(instance, 4, &degraded).value, 4);
}

TEST(OptLowerBoundUnderFaults, OracleSweepsFuzzedTraceStreams) {
  // kOptLowerBound over fuzzed BudgetTrace streams, including hard
  // m_t = 0 stalls and traces longer than the healthy bound.  The
  // oracle itself asserts verify(), the sandwich, and faulted >=
  // healthy monotonicity.
  std::size_t checks = 0;
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 41);
    Instance instance;
    const int jobs = 1 + static_cast<int>(rng.next_below(2));
    for (int j = 0; j < jobs; ++j) {
      instance.add_job(Job(MakeAttachmentTree(
                               static_cast<NodeId>(1 + rng.next_below(8)),
                               0.5, rng),
                           rng.next_in_range(0, 3)));
    }
    const int m = 1 + static_cast<int>(rng.next_below(3));
    BudgetTrace trace;
    const Time len = rng.next_in_range(1, 14);
    for (Time slot = 1; slot <= len; ++slot) {
      const auto roll = rng.next_below(4);
      if (roll == 0) continue;                      // healthy slot
      if (roll == 1) trace.set(slot, 0);            // hard stall
      else trace.set(slot, static_cast<int>(rng.next_below(
                               static_cast<std::uint64_t>(m) + 1)));
    }
    OptBoundCheckOptions options;
    options.budget = &trace;
    const OracleResult verdict =
        CheckOptLowerBoundOracle(instance, m, options);
    ASSERT_TRUE(verdict.ok) << "seed " << seed << ": " << verdict.detail;
    EXPECT_EQ(verdict.id, OracleId::kOptLowerBound);
    ++checks;
  }
  EXPECT_GE(checks, 120u);
}

TEST(OptLowerBoundUnderFaults, TotalStallNeverTerminatingTraceStillBounds) {
  // A trace that stalls every pinned slot but ends (the machine
  // recovers after it): bound = trace length + healthy bound.
  Instance instance;
  instance.add_job(Job(MakeParallelBlob(4), 0));
  BudgetTrace stall;
  for (Time slot = 1; slot <= 10; ++slot) stall.set(slot, 0);
  const Certificate cert = MaxFlowCertificate(instance, 2, &stall);
  EXPECT_EQ(cert.value, 12);
  EXPECT_TRUE(cert.verify(instance, &stall));
}

}  // namespace
}  // namespace otsched
