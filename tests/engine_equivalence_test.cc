// The golden gate for the incremental engine rewrite: every (instance,
// policy, m) case must produce a Schedule BIT-IDENTICAL to the seed
// engine's (ReferenceSimulate, the pre-incremental implementation kept
// verbatim in sim/engine_reference.cc) — same slots, same subjobs in the
// same order within each slot — plus identical flow summaries and stats.
//
// The corpus covers the shapes the fuzz harness generates (general
// Poisson tree mixes, certified saturated and pipelined semi-batched
// streams, the Section 4 adversary) across machine sizes, each run under
// every applicable registry policy, plus a serialization round-trip leg
// standing in for on-disk fuzz repros.  Only once this gate has soaked
// may engine_reference.cc be deleted.
#include "gtest_compat.h"

#include <algorithm>
#include <span>
#include <sstream>

#include "common/rng.h"
#include "dag/builders.h"
#include "gen/arrivals.h"
#include "gen/certified.h"
#include "gen/fifo_adversary.h"
#include "gen/random_trees.h"
#include "job/serialize.h"
#include "sched/registry.h"
#include "sim/engine.h"
#include "sim/observers.h"
#include "sim/trace.h"

namespace otsched {
namespace {

/// Flattens every hook invocation into one comparable line, so two hook
/// streams can be diffed like traces (pick wall times excluded — the one
/// nondeterministic hook argument).
class HookRecorder final : public RunObserver {
 public:
  void on_run_begin(const EngineBackend& engine) override {
    std::ostringstream line;
    line << "begin m=" << engine.m() << " jobs=" << engine.job_count();
    lines_.push_back(line.str());
  }
  void on_slot_begin(Time slot, const EngineBackend& engine) override {
    std::ostringstream line;
    line << "slot " << slot << " alive=" << engine.alive().size();
    lines_.push_back(line.str());
  }
  void on_arrival(Time slot, JobId job) override {
    std::ostringstream line;
    line << "arrive " << slot << ' ' << job;
    lines_.push_back(line.str());
  }
  void on_capacity_change(Time slot, int capacity) override {
    std::ostringstream line;
    line << "cap " << slot << ' ' << capacity;
    lines_.push_back(line.str());
  }
  void on_pick(Time slot, const EngineBackend&,
               std::span<const SubjobRef> picks, double) override {
    std::ostringstream line;
    line << "pick " << slot;
    for (const SubjobRef& ref : picks) {
      line << ' ' << ref.job << ':' << ref.node;
    }
    lines_.push_back(line.str());
  }
  void on_execute(Time slot, SubjobRef ref) override {
    std::ostringstream line;
    line << "exec " << slot << ' ' << ref.job << ':' << ref.node;
    lines_.push_back(line.str());
  }
  void on_complete(Time slot, JobId job) override {
    std::ostringstream line;
    line << "done " << slot << ' ' << job;
    lines_.push_back(line.str());
  }
  void on_finish(const SimResult& result) override {
    std::ostringstream line;
    line << "finish horizon=" << result.stats.horizon
         << " max_flow=" << result.flows.max_flow;
    lines_.push_back(line.str());
  }

  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

void ExpectIdenticalSchedules(const Schedule& incremental,
                              const Schedule& reference,
                              const std::string& label) {
  ASSERT_EQ(incremental.horizon(), reference.horizon()) << label;
  ASSERT_EQ(incremental.total_placed(), reference.total_placed()) << label;
  for (Time t = 1; t <= reference.horizon(); ++t) {
    const auto got = incremental.at(t);
    const auto want = reference.at(t);
    ASSERT_EQ(got.size(), want.size()) << label << " at slot " << t;
    for (std::size_t i = 0; i < want.size(); ++i) {
      // Same subjobs in the same order within the slot: bit-identical.
      EXPECT_EQ(got[i], want[i]) << label << " at slot " << t << " index "
                                 << i;
    }
  }
}

void ExpectIdenticalRuns(const SimResult& incremental,
                         const SimResult& reference,
                         const std::string& label) {
  ExpectIdenticalSchedules(incremental.full_schedule(), reference.full_schedule(), label);
  EXPECT_EQ(incremental.flows.completion, reference.flows.completion)
      << label;
  EXPECT_EQ(incremental.flows.flow, reference.flows.flow) << label;
  EXPECT_EQ(incremental.flows.max_flow, reference.flows.max_flow) << label;
  EXPECT_EQ(incremental.flows.max_flow_job, reference.flows.max_flow_job)
      << label;
  EXPECT_EQ(incremental.flows.all_completed, reference.flows.all_completed)
      << label;
  EXPECT_EQ(incremental.stats.horizon, reference.stats.horizon) << label;
  EXPECT_EQ(incremental.stats.executed_subjobs,
            reference.stats.executed_subjobs)
      << label;
  EXPECT_EQ(incremental.stats.idle_processor_slots,
            reference.stats.idle_processor_slots)
      << label;
  EXPECT_EQ(incremental.stats.busy_slots, reference.stats.busy_slots)
      << label;
  EXPECT_EQ(incremental.stats.faulted_slots, reference.stats.faulted_slots)
      << label;
  EXPECT_EQ(incremental.stats.capacity_shortfall,
            reference.stats.capacity_shortfall)
      << label;
}

/// Runs every applicable registry policy on (instance, m) through both
/// engine paths and requires identical results.
void CheckAllPolicies(const Instance& instance, int m,
                      bool semi_batched_certified, Time known_opt,
                      const std::string& corpus_label) {
  for (const PolicySpec& spec : AllPolicies()) {
    if (!PolicyApplies(spec, instance.all_out_forests(),
                       semi_batched_certified, m)) {
      continue;
    }
    std::ostringstream label;
    label << corpus_label << " / " << spec.name << " / m=" << m;
    // Fresh schedulers with the SAME seed: randomized tie-breakers must
    // follow identical trajectories for the comparison to be meaningful.
    const std::uint64_t seed = 12345;
    auto incremental_scheduler =
        spec.needs_semi_batched ? spec.make_semi_batched(known_opt)
                                : spec.make(seed);
    auto reference_scheduler =
        spec.needs_semi_batched ? spec.make_semi_batched(known_opt)
                                : spec.make(seed);
    const SimResult incremental =
        Simulate(instance, m, *incremental_scheduler);
    const SimResult reference =
        ReferenceSimulate(instance, m, *reference_scheduler);
    ExpectIdenticalRuns(incremental, reference, label.str());

    // Observer leg: attaching sinks must not perturb the run (the same
    // bit-identical schedule), the streamed trace must equal DeriveTrace,
    // and both engines must fire byte-identical hook streams.
    auto observed_scheduler =
        spec.needs_semi_batched ? spec.make_semi_batched(known_opt)
                                : spec.make(seed);
    HookRecorder recorder;
    EventTrace streamed;
    StreamingTraceObserver tracer(streamed);
    ObserverList observers;
    observers.add(&recorder);
    observers.add(&tracer);
    RunContext context;
    context.observer = &observers;
    const SimResult observed =
        Simulate(instance, m, *observed_scheduler, context);
    ExpectIdenticalRuns(observed, incremental, label.str() + " [observed]");
    EXPECT_EQ(FirstDivergence(streamed,
                              DeriveTrace(observed.full_schedule(), instance)),
              -1)
        << label.str() << " [streamed trace]";

    auto reference_observed_scheduler =
        spec.needs_semi_batched ? spec.make_semi_batched(known_opt)
                                : spec.make(seed);
    HookRecorder reference_recorder;
    RunContext reference_context;
    reference_context.observer = &reference_recorder;
    ReferenceSimulate(instance, m, *reference_observed_scheduler,
                      reference_context);
    EXPECT_EQ(recorder.lines(), reference_recorder.lines())
        << label.str() << " [hook stream]";
  }
}

void ExpectIdenticalSummaries(const SimResult& got, const SimResult& want,
                              const std::string& label) {
  EXPECT_EQ(got.flows.completion, want.flows.completion) << label;
  EXPECT_EQ(got.flows.flow, want.flows.flow) << label;
  EXPECT_EQ(got.flows.max_flow, want.flows.max_flow) << label;
  EXPECT_EQ(got.flows.max_flow_job, want.flows.max_flow_job) << label;
  EXPECT_EQ(got.flows.all_completed, want.flows.all_completed) << label;
  EXPECT_EQ(got.stats.horizon, want.stats.horizon) << label;
  EXPECT_EQ(got.stats.executed_subjobs, want.stats.executed_subjobs) << label;
  EXPECT_EQ(got.stats.idle_processor_slots, want.stats.idle_processor_slots)
      << label;
  EXPECT_EQ(got.stats.busy_slots, want.stats.busy_slots) << label;
  EXPECT_EQ(got.stats.faulted_slots, want.stats.faulted_slots) << label;
  EXPECT_EQ(got.stats.capacity_shortfall, want.stats.capacity_shortfall)
      << label;
}

/// The flow-only gate: for every applicable registry policy, a
/// RecordMode::kFlowOnly run — on either engine, with or without
/// observers — must produce a FlowSummary and SimStats bit-identical to
/// the full-mode run's, which in turn must match the schedule-derived
/// ComputeFlows (the pre-refactor definition of the numbers).
void CheckFlowOnlyAllPolicies(const Instance& instance, int m,
                              bool semi_batched_certified, Time known_opt,
                              const std::string& corpus_label) {
  for (const PolicySpec& spec : AllPolicies()) {
    if (!PolicyApplies(spec, instance.all_out_forests(),
                       semi_batched_certified, m)) {
      continue;
    }
    const std::uint64_t seed = 12345;
    const auto make = [&] {
      return spec.needs_semi_batched ? spec.make_semi_batched(known_opt)
                                     : spec.make(seed);
    };
    std::ostringstream label_stream;
    label_stream << corpus_label << " / " << spec.name << " / m=" << m;
    const std::string label = label_stream.str();

    // Full-mode baseline; its online flows must equal the derived ones.
    auto full_scheduler = make();
    const SimResult full = Simulate(instance, m, *full_scheduler);
    ASSERT_TRUE(full.has_schedule()) << label;
    const FlowSummary derived = ComputeFlows(full.full_schedule(), instance);
    EXPECT_EQ(full.flows.completion, derived.completion) << label;
    EXPECT_EQ(full.flows.flow, derived.flow) << label;
    EXPECT_EQ(full.flows.max_flow, derived.max_flow) << label;
    EXPECT_EQ(full.flows.max_flow_job, derived.max_flow_job) << label;
    EXPECT_EQ(full.flows.all_completed, derived.all_completed) << label;

    // Flow-only on the incremental engine.
    auto flow_scheduler = make();
    const SimResult flow_only =
        Simulate(instance, m, *flow_scheduler, FlowOnlyOptions());
    EXPECT_FALSE(flow_only.has_schedule()) << label;
    ExpectIdenticalSummaries(flow_only, full, label + " [flow-only]");

    // Flow-only on the reference engine.
    auto reference_scheduler = make();
    const SimResult reference = ReferenceSimulate(
        instance, m, *reference_scheduler, FlowOnlyOptions());
    EXPECT_FALSE(reference.has_schedule()) << label;
    ExpectIdenticalSummaries(reference, full, label + " [flow-only ref]");

    // Flow-only with observers attached: the hooks still stream the full
    // event trace even though no schedule is materialized, and the run
    // itself is unperturbed.
    auto observed_scheduler = make();
    HookRecorder recorder;
    EventTrace streamed;
    StreamingTraceObserver tracer(streamed);
    ObserverList observers;
    observers.add(&recorder);
    observers.add(&tracer);
    RunContext context{FlowOnlyOptions(), &observers};
    const SimResult observed =
        Simulate(instance, m, *observed_scheduler, context);
    EXPECT_FALSE(observed.has_schedule()) << label;
    ExpectIdenticalSummaries(observed, full, label + " [flow-only observed]");
    EXPECT_EQ(FirstDivergence(streamed,
                              DeriveTrace(full.full_schedule(), instance)),
              -1)
        << label << " [flow-only streamed trace]";
  }
}

/// The faulted gate: under a fluctuating per-slot budget, for every
/// applicable capacity-aware policy and every fault model in `specs`,
/// both engines — with and without observers — must produce bit-identical
/// schedules, flows, stats (including the fault counters) and hook
/// streams (which now carry the `cap` capacity-change lines).
void CheckFaultedAllPolicies(const Instance& instance, int m,
                             std::span<const FaultSpec> specs,
                             const std::string& corpus_label) {
  for (const PolicySpec& spec : AllPolicies()) {
    if (!PolicyApplies(spec, instance.all_out_forests(),
                       /*semi_batched_certified=*/false, m)) {
      continue;
    }
    if (spec.needs_semi_batched) continue;
    // Skip window planners: they replan against fixed m and opt out of
    // fluctuating capacity (the engines CHECK this).
    if (!spec.make(1)->supports_fluctuating_capacity()) continue;
    for (const FaultSpec& faults : specs) {
      std::ostringstream label;
      label << corpus_label << " / " << spec.name << " / m=" << m << " / "
            << ToString(faults);
      const std::uint64_t seed = 12345;
      SimOptions options;
      options.faults = faults;

      auto incremental_scheduler = spec.make(seed);
      const SimResult incremental =
          Simulate(instance, m, *incremental_scheduler, options);
      auto reference_scheduler = spec.make(seed);
      const SimResult reference =
          ReferenceSimulate(instance, m, *reference_scheduler, options);
      ExpectIdenticalRuns(incremental, reference, label.str());
      // An active model at these rates must actually bite somewhere —
      // otherwise this gate silently degenerates to the fault-free one.
      EXPECT_GT(incremental.stats.faulted_slots, 0) << label.str();

      // Observer legs on both engines: identical runs and byte-identical
      // hook streams, capacity-change lines included.
      auto observed_scheduler = spec.make(seed);
      HookRecorder recorder;
      RunContext context{options, &recorder};
      const SimResult observed =
          Simulate(instance, m, *observed_scheduler, context);
      ExpectIdenticalRuns(observed, incremental,
                          label.str() + " [observed]");
      auto reference_observed_scheduler = spec.make(seed);
      HookRecorder reference_recorder;
      RunContext reference_context{options, &reference_recorder};
      ReferenceSimulate(instance, m, *reference_observed_scheduler,
                        reference_context);
      EXPECT_EQ(recorder.lines(), reference_recorder.lines())
          << label.str() << " [hook stream]";
      const bool has_cap_line =
          std::any_of(recorder.lines().begin(), recorder.lines().end(),
                      [](const std::string& line) {
                        return line.rfind("cap ", 0) == 0;
                      });
      EXPECT_TRUE(has_cap_line) << label.str() << " [no cap hook fired]";
    }
  }
}

TEST(EngineEquivalence, FaultedPoissonTreeMixes) {
  Rng rng(13);
  Instance instance = MakePoissonArrivals(
      6, 0.2,
      [](std::int64_t i, Rng& r) {
        return MakeTree(static_cast<TreeFamily>(i % 4),
                        static_cast<NodeId>(5 + r.next_below(20)), r);
      },
      rng);

  FaultSpec blip;
  blip.model = FaultModel::kRandomBlip;
  blip.seed = 5;
  blip.rate = 0.4;
  FaultSpec burst;
  burst.model = FaultModel::kBurstOutage;
  burst.seed = 9;
  burst.rate = 0.5;
  burst.burst_len = 3;
  FaultSpec dip;
  dip.model = FaultModel::kAdversarialDip;
  BudgetTrace trace;
  for (Time slot = 2; slot <= 120; slot += 5) {
    trace.set(slot, static_cast<int>(slot % 3));
  }
  FaultSpec traced;
  traced.model = FaultModel::kTrace;
  traced.trace = &trace;

  const std::vector<FaultSpec> specs = {blip, burst, dip, traced};
  for (int m : {2, 4}) {
    CheckFaultedAllPolicies(instance, m, specs, "faulted-poisson");
  }
}

TEST(EngineEquivalence, FaultedAdversaryAndCertified) {
  FaultSpec blip;
  blip.model = FaultModel::kRandomBlip;
  blip.seed = 21;
  blip.rate = 0.35;
  FaultSpec burst;
  burst.model = FaultModel::kBurstOutage;
  burst.seed = 4;
  burst.rate = 0.6;
  burst.burst_len = 2;
  burst.floor = 1;
  const std::vector<FaultSpec> specs = {blip, burst};

  LowerBoundSimOptions options;
  options.m = 4;
  options.num_jobs = 8;
  const AdversarialInstance adv = MakeAdversarialInstance(options);
  CheckFaultedAllPolicies(adv.instance, 4, specs, "faulted-adversary");

  Rng rng(42);
  CertifiedInstance cert = MakeSpacedSaturatedInstance(4, 3, 3, rng);
  CheckFaultedAllPolicies(cert.instance, 4, specs, "faulted-saturated");
}

/// Large sparse workload (many alive chain jobs, one ready subjob each):
/// the shape where flow-only recording pays off, mirroring the
/// BM_EngineSparse* microbenchmarks.
Instance MakeSparseChains(int jobs, NodeId chain_len) {
  Instance instance;
  instance.set_name("sparse-chains-" + std::to_string(jobs));
  for (int j = 0; j < jobs; ++j) {
    instance.add_job(Job(MakeChain(chain_len), 0));
  }
  return instance;
}

TEST(EngineEquivalence, FlowOnlySparse512) {
  const Instance instance = MakeSparseChains(512, 32);
  CheckFlowOnlyAllPolicies(instance, 8, /*semi_batched_certified=*/false,
                           /*known_opt=*/0, "sparse-512");
}

TEST(EngineEquivalence, FlowOnlySparse2048) {
  const Instance instance = MakeSparseChains(2048, 16);
  CheckFlowOnlyAllPolicies(instance, 8, /*semi_batched_certified=*/false,
                           /*known_opt=*/0, "sparse-2048");
}

TEST(EngineEquivalence, FlowOnlyCorpusShapes) {
  // The small corpus shapes too, so semi-batched and adversarial paths
  // get flow-only coverage (sparse chains never certify semi-batched).
  Rng rng(7);
  Instance poisson = MakePoissonArrivals(
      6, 0.2,
      [](std::int64_t i, Rng& r) {
        return MakeTree(static_cast<TreeFamily>(i % 4),
                        static_cast<NodeId>(5 + r.next_below(20)), r);
      },
      rng);
  for (int m : {1, 3}) {
    CheckFlowOnlyAllPolicies(poisson, m, /*semi_batched_certified=*/false,
                             /*known_opt=*/0, "flowonly-poisson");
  }
  Rng cert_rng(42);
  CertifiedInstance cert = MakePipelinedSemiBatchedInstance(4, 2, 3, cert_rng);
  CheckFlowOnlyAllPolicies(cert.instance, 4, /*semi_batched_certified=*/true,
                           cert.opt, "flowonly-pipelined");
}

TEST(EngineEquivalence, GeneralPoissonTreeMixes) {
  for (std::uint64_t seed : {1u, 7u, 23u}) {
    Rng rng(seed);
    Instance instance = MakePoissonArrivals(
        6, 0.2,
        [](std::int64_t i, Rng& r) {
          return MakeTree(static_cast<TreeFamily>(i % 4),
                          static_cast<NodeId>(5 + r.next_below(20)), r);
        },
        rng);
    for (int m : {1, 2, 3, 8}) {
      std::ostringstream label;
      label << "poisson-seed" << seed;
      CheckAllPolicies(instance, m, /*semi_batched_certified=*/false,
                       /*known_opt=*/0, label.str());
    }
  }
}

TEST(EngineEquivalence, CertifiedSaturatedBatches) {
  for (int m : {4, 8}) {
    Rng rng(42);
    CertifiedInstance cert = MakeSpacedSaturatedInstance(m, 3, 4, rng);
    std::ostringstream label;
    label << "saturated-m" << m;
    CheckAllPolicies(cert.instance, m, /*semi_batched_certified=*/false,
                     cert.opt, label.str());
  }
}

TEST(EngineEquivalence, CertifiedPipelinedSemiBatched) {
  // m % 4 == 0 makes the semi-batched Algorithm A applicable, so this leg
  // covers the window-planning scheduler too.
  for (int m : {4, 8}) {
    Rng rng(42);
    CertifiedInstance cert = MakePipelinedSemiBatchedInstance(m, 2, 3, rng);
    std::ostringstream label;
    label << "pipelined-m" << m;
    CheckAllPolicies(cert.instance, m, /*semi_batched_certified=*/true,
                     cert.opt, label.str());
  }
}

TEST(EngineEquivalence, Section4Adversary) {
  LowerBoundSimOptions options;
  options.m = 4;
  options.num_jobs = 12;
  const AdversarialInstance adv = MakeAdversarialInstance(options);
  for (int m : {1, 4}) {
    CheckAllPolicies(adv.instance, m, /*semi_batched_certified=*/false,
                     /*known_opt=*/0, "sec4-adversary");
  }
}

TEST(EngineEquivalence, SerializedCorpusRoundTrip) {
  // Repro files are text; replaying them must hit the same engine path
  // equivalence.  The round trip also pins serialization stability.
  Rng rng(99);
  Instance original = MakePoissonArrivals(
      4, 0.25,
      [](std::int64_t i, Rng& r) {
        return MakeTree(static_cast<TreeFamily>(i % 4),
                        static_cast<NodeId>(6 + r.next_below(10)), r);
      },
      rng);
  const Instance replayed = InstanceFromText(InstanceToText(original));
  ASSERT_EQ(replayed.job_count(), original.job_count());
  for (int m : {2, 3}) {
    CheckAllPolicies(replayed, m, /*semi_batched_certified=*/false,
                     /*known_opt=*/0, "serialized-roundtrip");
  }
}

}  // namespace
}  // namespace otsched
