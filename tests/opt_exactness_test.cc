// Out-forest exactness regression: on a single out-forest the certified
// max-flow lower bound (opt/flow_network) must equal the Corollary 5.4
// closed form (opt/single_batch) BIT-IDENTICALLY.
//
// Why equality is forced: the flow bound dominates the Lemma 5.1 depth
// profile (every depth-d prefix is a window family), and on a lone
// out-forest the depth profile IS the optimum (Corollary 5.4, realized
// by LPF) — so certified ∈ [profile, OPT] collapses to a point.  Any
// drift here means the relaxation or the window derivation broke.
//
// Deliberately engine-independent: nothing in this target runs sim/ —
// the comparison is closed form vs. certified bound, so a scheduler
// regression can never mask (or fake) a certification regression.
#include "gtest_compat.h"

#include "dag/builders.h"
#include "gen/random_trees.h"
#include "gen/recursive.h"
#include "job/serialize.h"
#include "opt/flow_network.h"
#include "opt/single_batch.h"

namespace otsched {
namespace {

void ExpectExact(Dag forest, Time release, int m) {
  const Time closed_form = SingleBatchOpt(forest, m);
  Instance instance;
  instance.add_job(Job(std::move(forest), release));
  const Certificate cert = MaxFlowCertificate(instance, m);
  ASSERT_EQ(cert.value, closed_form)
      << "certified bound drifted from Corollary 5.4 on m=" << m
      << " release=" << release << "\n"
      << InstanceToText(instance);
  EXPECT_TRUE(cert.verify(instance));
}

TEST(OutForestExactness, HandShapes) {
  for (int m : {1, 2, 3, 8}) {
    ExpectExact(MakeChain(7), 0, m);
    ExpectExact(MakeStar(6), 0, m);
    ExpectExact(MakeParallelBlob(10), 0, m);
    ExpectExact(MakeCompleteTree(2, 4), 0, m);
    ExpectExact(MakeSpineWithBursts(5, 2), 0, m);
  }
}

TEST(OutForestExactness, FuzzedForestsAllFamilies) {
  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    Rng rng(seed * 0x2545f4914f6cdd1dULL + 7);
    for (const TreeFamily family :
         {TreeFamily::kBushy, TreeFamily::kMixed, TreeFamily::kSpiny,
          TreeFamily::kBranchy}) {
      const auto size =
          static_cast<NodeId>(1 + rng.next_below(24));
      Dag tree = MakeTree(family, size, rng);
      const int m = 1 + static_cast<int>(rng.next_below(4));
      const Time release = static_cast<Time>(rng.next_below(5));
      ExpectExact(std::move(tree), release, m);
    }
  }
}

TEST(OutForestExactness, FuzzedMultiTreeForests) {
  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    Rng rng(seed * 9576890767ULL + 19);
    const auto size = static_cast<NodeId>(3 + rng.next_below(21));
    const int trees = 1 + static_cast<int>(rng.next_below(3));
    Dag forest = MakeRandomForest(size, trees, 0.5, rng);
    const int m = 1 + static_cast<int>(rng.next_below(8));
    ExpectExact(std::move(forest), static_cast<Time>(seed % 3), m);
  }
}

TEST(OutForestExactness, RecursionTrees) {
  for (int m : {1, 2, 3}) {
    ExpectExact(MakeFibTree(6), 0, m);
    Rng rng(5 + static_cast<std::uint64_t>(m));
    ExpectExact(MakeRandomParallelForSeries(3, 4, rng), 1, m);
  }
}

}  // namespace
}  // namespace otsched
