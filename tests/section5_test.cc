// Tests for analysis/section5.h: the Theorem 5.6 proof structure holds
// on real Algorithm A runs, and the checker detects fabricated breaks.
#include <gtest/gtest.h>

#include "analysis/section5.h"
#include "core/alg_a.h"
#include "gen/series_parallel.h"
#include "dag/builders.h"
#include "gen/certified.h"
#include "sim/engine.h"

namespace otsched {
namespace {

class Section5SweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Section5SweepTest, HoldsOnAlgARuns) {
  const auto [m, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 6151 + m);
  const Time delta = 4;
  CertifiedInstance cert =
      MakePipelinedSemiBatchedInstance(m, delta, 8, rng);

  AlgASemiBatchedScheduler::Options options;
  options.known_opt = cert.opt;
  AlgASemiBatchedScheduler scheduler(options);
  const SimResult result = Simulate(cert.instance, m, scheduler);

  const Section5Report report = CheckSection5Structure(
      result.full_schedule(), cert.instance, m, options.alpha, cert.opt / 2);
  EXPECT_TRUE(report.all_hold()) << report.violation;
  EXPECT_LE(report.max_batch_width, m / options.alpha);
  EXPECT_GT(report.checks, 0);
  // With only two concurrent tails on half the machine, contention
  // should be rare on this family.
  EXPECT_LT(report.tail_contention_share, 0.5) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Section5SweepTest,
                         ::testing::Combine(::testing::Values(8, 16, 32),
                                            ::testing::Values(1, 2, 3)));

TEST(Section5, DetectsWidthCapViolation) {
  // A fabricated schedule that gives one batch the whole machine.
  Instance instance;
  instance.add_job(Job(MakeParallelBlob(8), 0));
  Schedule schedule(8);
  for (NodeId v = 0; v < 8; ++v) schedule.place(1, SubjobRef{0, v});
  const Section5Report report =
      CheckSection5Structure(schedule, instance, 8, 4, 2);
  EXPECT_FALSE(report.width_cap_holds);
  EXPECT_EQ(report.max_batch_width, 8);
}

TEST(Section5, DetectsStarvedTailWithSpareCapacity) {
  // An old batch with plenty of remaining work runs nothing while the
  // machine idles: head-priority broken.
  Instance instance;
  instance.add_job(Job(MakeParallelBlob(12), 0));
  Schedule schedule(8);
  // Width cap p = 2 respected, but the batch crawls at width 1 beyond
  // its head window (2W = 4 slots) while 7 processors idle.
  for (NodeId v = 0; v < 12; ++v) {
    schedule.place(v + 1, SubjobRef{0, v});
  }
  const Section5Report report =
      CheckSection5Structure(schedule, instance, 8, 4, 2);
  EXPECT_FALSE(report.head_priority_holds);
  EXPECT_NE(report.violation.find("processors used"), std::string::npos);
}

TEST(Section5, WidthCapSurvivesGeneralDagMode) {
  // On general DAGs the busy property may lapse (head_priority can
  // fail), but the m/alpha width cap is structural and must hold.
  Rng rng(31);
  Instance instance;
  for (int b = 0; b < 4; ++b) {
    SeriesParallelOptions sp;
    sp.size = 40;
    instance.add_job(Job(MakeSeriesParallelDag(sp, rng), b * 4));
  }
  AlgASemiBatchedScheduler::Options options;
  options.known_opt = 8;
  options.allow_general_dags = true;
  AlgASemiBatchedScheduler scheduler(options);
  const SimResult result = Simulate(instance, 8, scheduler);
  const Section5Report report =
      CheckSection5Structure(result.full_schedule(), instance, 8, 4, 4);
  EXPECT_TRUE(report.width_cap_holds) << report.violation;
  EXPECT_LE(report.max_batch_width, 2);
}

TEST(Section5, EmptyInstanceTrivial) {
  const Section5Report report =
      CheckSection5Structure(Schedule(4), Instance(), 4, 4, 1);
  EXPECT_TRUE(report.all_hold());
}

}  // namespace
}  // namespace otsched
