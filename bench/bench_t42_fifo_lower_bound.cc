// E3 — Theorem 4.2 / Lemma 4.1: FIFO is Omega(log m)-competitive.
//
// Co-simulates arbitrary FIFO against the Section 4 adaptive adversary
// across m = 8 .. 4096 and reports the measured competitive ratio
// (max flow / certified OPT upper bound m+1) against the paper's
// lg m - lg lg m curve.  Also prints the U(t) sublayer trace of Lemma 4.1
// for one configuration, showing the strict growth phase.
//
// The specialized lbsim runs in O(alive jobs) per slot, which is what
// makes m = 4096 reachable; cross-validation against the generic engine
// is covered by tests (lbsim_test.cc).
#include <cmath>
#include <cstdio>

#include "analysis/sweep.h"
#include "analysis/timeseries.h"
#include "common/csv.h"
#include "common/table.h"
#include "common/timer.h"
#include "lbsim/lbsim.h"

using namespace otsched;

int main() {
  std::printf("== E3 / Theorem 4.2: FIFO lower bound, ratio vs m ==\n\n");

  const std::vector<int> ms = {8, 16, 32, 64, 128, 256, 512, 1024, 2048,
                               4096, 8192};

  struct Row {
    int m;
    double ratio;
    double lg_term;
    std::int64_t max_alive;
    Time max_flow;
    double seconds;
  };

  WallTimer total;
  const auto rows = BatchRunner().Map<Row>(ms.size(), [&](std::size_t i) {
    const int m = ms[i];
    LowerBoundSimOptions options;
    options.m = m;
    // The queue saturates long before the paper's 2*m*lg(m) jobs; 16*m
    // keeps the deep sweep under control while preserving the plateau.
    options.num_jobs = std::min<std::int64_t>(16LL * m, 60000);
    options.record_sublayer_trace = false;
    options.record_layer_sizes = false;  // O(jobs * m) memory otherwise
    WallTimer timer;
    const LowerBoundSimResult result = RunLowerBoundSim(options);
    Row row;
    row.m = m;
    row.ratio = static_cast<double>(result.max_flow) /
                static_cast<double>(result.certified_opt_upper);
    row.lg_term = std::log2(static_cast<double>(m)) -
                  std::log2(std::log2(static_cast<double>(m)));
    row.max_alive = result.max_alive;
    row.max_flow = result.max_flow;
    row.seconds = timer.elapsed_seconds();
    return row;
  });

  CsvWriter csv("results/t42_fifo_lower_bound.csv",
                {"m", "ratio", "lg_m_minus_lglg_m", "max_alive", "max_flow"});
  TextTable table({"m", "FIFO ratio", "lgm-lglgm", "ratio/curve",
                   "peak queue", "sim time (s)"});
  for (const Row& row : rows) {
    table.row(row.m, row.ratio, row.lg_term, row.ratio / row.lg_term,
              row.max_alive, row.seconds);
    csv.row(static_cast<long long>(row.m), row.ratio, row.lg_term,
            static_cast<long long>(row.max_alive),
            static_cast<long long>(row.max_flow));
  }
  table.print();
  {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const Row& row : rows) {
      xs.push_back(static_cast<double>(row.m));
      ys.push_back(row.ratio);
    }
    const LogFit fit = FitLogarithm(xs, ys);
    std::printf(
        "fitted: ratio ~ %.3f * lg(m) %+.3f  (R^2 = %.4f) — Theorem 4.2\n"
        "predicts slope ~1: one extra OPT of flow per doubling of m.\n",
        fit.slope, fit.intercept, fit.r_squared);
  }
  std::printf("(raw data: t42_fifo_lower_bound.csv; total %.1fs)\n\n",
              total.elapsed_seconds());

  // Lemma 4.1: the U(t) trace at one m — strict growth while small.
  std::printf("Lemma 4.1 sublayer trace, m = 256 (U at release boundaries):\n");
  LowerBoundSimOptions trace_options;
  trace_options.m = 256;
  trace_options.num_jobs = 64;
  const LowerBoundSimResult trace = RunLowerBoundSim(trace_options);
  std::printf("  k:    ");
  for (std::size_t k = 0; k < 16 && k < trace.sublayer_trace.size(); ++k) {
    std::printf("%5zu", k);
  }
  std::printf("\n  U(k): ");
  for (std::size_t k = 0; k < 16 && k < trace.sublayer_trace.size(); ++k) {
    std::printf("%5lld", static_cast<long long>(trace.sublayer_trace[k]));
  }
  std::printf(
      "\n\npaper artifact: Theorem 4.2 — the ratio grows with m and tracks\n"
      "lg m - lg lg m (column 4 roughly constant).  Lemma 4.1 — U(k)\n"
      "strictly increases while below the threshold.\n");
  return 0;
}
