// E6 — Theorem 5.6: the semi-batched super-clairvoyant Algorithm A is
// O(1)-competitive (the paper proves 129-competitive with alpha = 4,
// beta = 258).
//
// Sweep m over powers of two on two certified semi-batched families:
//   * "pipelined" — (m/2)-wide 2*delta-deep batches every delta slots:
//     a ZERO-SLACK perfectly packable stream (OPT = 2*delta exactly),
//     the hard regime the introduction describes;
//   * "spaced saturated" — m-wide batches every delta slots
//     (OPT = delta exactly).
// The measured ratio must be flat in m and far below 129.
#include <cstdio>

#include "analysis/ratio.h"
#include "analysis/section5.h"
#include "analysis/sweep.h"
#include "common/csv.h"
#include "common/table.h"
#include "core/alg_a.h"
#include "gen/certified.h"

using namespace otsched;

int main() {
  std::printf("== E6 / Theorem 5.6: Algorithm A on semi-batched instances ==\n");
  std::printf("alpha = 4, known OPT, certified exact denominators.\n\n");

  const std::vector<int> ms = {8, 16, 32, 64, 128, 256};
  const int kSeeds = 5;
  const Time delta = 8;

  struct Row {
    int m;
    double pipelined_ratio;
    double spaced_ratio;
    std::int64_t mc_violations;
    bool structure_ok = true;  // Section 5.3 proof mechanics (analysis/section5)
  };

  const auto rows = BatchRunner().Map<Row>(ms.size(), [&](std::size_t i) {
    const int m = ms[i];
    Row row{m, 0.0, 0.0, 0};
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 131071 + m);
      {
        CertifiedInstance cert =
            MakePipelinedSemiBatchedInstance(m, delta, 10, rng);
        AlgASemiBatchedScheduler::Options options;
        options.known_opt = cert.opt;
        AlgASemiBatchedScheduler scheduler(options);
        const RatioMeasurement r =
            MeasureRatio(cert.instance, m, scheduler, cert.opt);
        row.pipelined_ratio = std::max(row.pipelined_ratio, r.ratio);
        row.mc_violations += scheduler.mc_busy_violations();
        // Re-run full-record to obtain the schedule: the Section 5
        // structural audit walks the materialized slot shape.
        AlgASemiBatchedScheduler again(options);
        const SimResult sim = Simulate(cert.instance, m, again);
        const Section5Report structure = CheckSection5Structure(
            sim.full_schedule(), cert.instance, m, options.alpha, cert.opt / 2);
        row.structure_ok = row.structure_ok && structure.all_hold();
      }
      {
        CertifiedInstance cert = MakeSpacedSaturatedInstance(m, delta, 10, rng);
        AlgASemiBatchedScheduler::Options options;
        options.known_opt = 2 * cert.opt;  // releases are multiples of OPT
        AlgASemiBatchedScheduler scheduler(options);
        const RatioMeasurement r =
            MeasureRatio(cert.instance, m, scheduler, cert.opt);
        row.spaced_ratio = std::max(row.spaced_ratio, r.ratio);
        row.mc_violations += scheduler.mc_busy_violations();
      }
    }
    return row;
  });

  CsvWriter csv("results/t56_alg_a_semibatched.csv",
                {"m", "pipelined_ratio", "spaced_ratio"});
  TextTable table({"m", "pipelined ratio", "spaced ratio", "<= 129",
                   "MC violations", "Sec5.3 structure"});
  double worst = 0.0;
  for (const Row& row : rows) {
    worst = std::max({worst, row.pipelined_ratio, row.spaced_ratio});
    table.row(row.m, row.pipelined_ratio, row.spaced_ratio,
              std::max(row.pipelined_ratio, row.spaced_ratio) <= 129.0
                  ? "yes"
                  : "NO",
              row.mc_violations, row.structure_ok ? "ok" : "BROKEN");
    csv.row(static_cast<long long>(row.m), row.pipelined_ratio,
            row.spaced_ratio);
  }
  table.print();
  std::printf(
      "\npaper artifact: Theorem 5.6 — 129-competitive on semi-batched\n"
      "out-forest instances.  Measured worst ratio %.2f: constant in m\n"
      "(the columns are flat) and far inside the proven envelope.\n"
      "(raw data: t56_alg_a_semibatched.csv)\n",
      worst);
  return 0;
}
