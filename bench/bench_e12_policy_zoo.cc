// E12 — the policy zoo: every scheduler in the library on shared
// workloads (extension experiment; frames the paper's conclusion
// questions about non-clairvoyant algorithms).
//
// Columns contrast three information models:
//   non-clairvoyant   : FIFO variants, work stealing, list greedy, EQUI
//   clairvoyant       : FIFO+LPF tie-break, global LPF, SRPT-like,
//                       Algorithm A
// on three workloads: the Section 4 adversarial family, saturated batched
// streams, and a Poisson quicksort service.
//
// Standard policies come from the shared registry (sched/registry.h); the
// zoo adds two bench-local variants the registry deliberately does not
// carry (a key-avoiding adversarial tie-break and a small-beta Algorithm
// A).  The (workload, policy) grid fans out over BatchRunner.
#include <cstdio>
#include <memory>

#include "analysis/ratio.h"
#include "common/table.h"
#include "core/alg_a_full.h"
#include "gen/arrivals.h"
#include "gen/certified.h"
#include "gen/fifo_adversary.h"
#include "gen/recursive.h"
#include "sched/fifo.h"
#include "sched/registry.h"
#include "sim/batch_runner.h"

using namespace otsched;

namespace {

struct Workload {
  std::string name;
  Instance instance;
  Time opt;  // certified, or 0 for lower-bound denominator
};

struct ZooEntry {
  std::string display;
  std::string model;  // "non-clair" | "clairvoyant"
  std::function<std::unique_ptr<Scheduler>()> make;
};

ZooEntry FromRegistry(const char* name, const char* model,
                      std::uint64_t seed = 0) {
  std::unique_ptr<Scheduler> probe = MakePolicy(name, seed);
  return ZooEntry{probe->name(), model,
                  [name, seed] { return MakePolicy(name, seed); }};
}

std::vector<ZooEntry> MakeZoo(const AdversarialInstance& adv) {
  std::vector<ZooEntry> zoo;
  zoo.push_back(FromRegistry("fifo/first-ready", "non-clair"));
  {
    // Key-avoiding tie-break; inert on the non-adversarial workloads
    // (their job/node ids fall outside the mask).  Stays bench-local: the
    // closure over the adversary's key mask has no registry spelling.
    auto make = [&adv]() -> std::unique_ptr<Scheduler> {
      FifoScheduler::Options o;
      o.tie_break = FifoTieBreak::kAvoidMarked;
      o.deprioritize = [&adv](JobId job, NodeId node) {
        if (job < 0 || static_cast<std::size_t>(job) >= adv.key_mask.size()) {
          return false;
        }
        const auto& mask = adv.key_mask[static_cast<std::size_t>(job)];
        return static_cast<std::size_t>(node) < mask.size() &&
               mask[static_cast<std::size_t>(node)] != 0;
      };
      return std::make_unique<FifoScheduler>(std::move(o));
    };
    zoo.push_back(ZooEntry{make()->name(), "non-clair", make});
  }
  zoo.push_back(FromRegistry("work-stealing", "non-clair"));
  zoo.push_back(FromRegistry("list-greedy", "non-clair", 11));
  zoo.push_back(FromRegistry("round-robin-equi", "non-clair"));
  zoo.push_back(FromRegistry("fifo/lpf-height", "clairvoyant"));
  zoo.push_back(FromRegistry("global-lpf", "clairvoyant"));
  zoo.push_back(FromRegistry("remaining-work/smallest", "clairvoyant"));
  {
    // Registry Algorithm A uses the Theorem 5.7 beta = 258; the zoo keeps
    // the historical small doubling base so the column stays comparable.
    auto make = []() -> std::unique_ptr<Scheduler> {
      AlgAScheduler::Options o;
      o.beta = 16;
      return std::make_unique<AlgAScheduler>(o);
    };
    zoo.push_back(ZooEntry{make()->name(), "clairvoyant", make});
  }
  return zoo;
}

}  // namespace

int main() {
  std::printf("== E12: the policy zoo (extension experiment) ==\n");
  const int m = 16;
  std::printf("m = %d; ratio denominators: certified OPT where available,\n"
              "else the provable lower bound (conservative).\n\n", m);

  // Workloads.
  LowerBoundSimOptions adv_options;
  adv_options.m = m;
  adv_options.num_jobs = 10 * m;
  const AdversarialInstance adv = MakeAdversarialInstance(adv_options);

  std::vector<Workload> workloads;
  workloads.push_back(
      {"sec4-adversary", adv.instance, adv.fifo_run.certified_opt_upper});
  {
    Rng rng(2);
    CertifiedInstance cert = MakeSpacedSaturatedInstance(m, 8, 10, rng);
    workloads.push_back({"saturated-batches", std::move(cert.instance),
                         cert.opt});
  }
  {
    Rng rng(3);
    Instance qs = MakePoissonArrivals(
        24, 0.05,
        [](std::int64_t, Rng& r) {
          QuicksortOptions q;
          q.n = 1200;
          q.grain = 48;
          q.cutoff = 48;
          return MakeQuicksortTree(q, r);
        },
        rng);
    workloads.push_back({"poisson-quicksort", std::move(qs), 0});
  }

  const std::vector<ZooEntry> zoo = MakeZoo(adv);

  // The full (policy, workload) grid; each cell builds a fresh scheduler
  // (schedulers are stateful), so cells are independent.
  const BatchRunner runner;
  const std::vector<double> ratios = runner.Map<double>(
      zoo.size() * workloads.size(), [&](std::size_t i) {
        const ZooEntry& entry = zoo[i / workloads.size()];
        const Workload& workload = workloads[i % workloads.size()];
        std::unique_ptr<Scheduler> scheduler = entry.make();
        return MeasureRatio(workload.instance, m, *scheduler, workload.opt)
            .ratio;
      });

  TextTable table({"policy", "model", "sec4-adversary", "saturated",
                   "poisson-qsort"});
  for (std::size_t p = 0; p < zoo.size(); ++p) {
    table.row(zoo[p].display, zoo[p].model, ratios[p * workloads.size()],
              ratios[p * workloads.size() + 1],
              ratios[p * workloads.size() + 2]);
  }
  table.print();
  std::printf(
      "\nReadings: every NON-clairvoyant policy is hurt by the Section 4\n"
      "family (its damage needs only online information); clairvoyant\n"
      "intra-job shaping (lpf-height / global-lpf) neutralizes it; SRPT\n"
      "is fine here but starves big jobs elsewhere (see tests).  This is\n"
      "the empirical backdrop for the paper's open question: is ANY\n"
      "non-clairvoyant algorithm O(1)-competitive on out-trees?\n");
  return 0;
}
