// E12 — the policy zoo: every scheduler in the library on shared
// workloads (extension experiment; frames the paper's conclusion
// questions about non-clairvoyant algorithms).
//
// Columns contrast three information models:
//   non-clairvoyant   : FIFO variants, work stealing, list greedy, EQUI
//   clairvoyant       : FIFO+LPF tie-break, global LPF, SRPT-like,
//                       Algorithm A
// on three workloads: the Section 4 adversarial family, saturated batched
// streams, and a Poisson quicksort service.
#include <cstdio>
#include <memory>

#include "analysis/ratio.h"
#include "common/table.h"
#include "core/alg_a_full.h"
#include "core/lpf.h"
#include "gen/arrivals.h"
#include "gen/certified.h"
#include "gen/fifo_adversary.h"
#include "gen/recursive.h"
#include "sched/fifo.h"
#include "sched/list_greedy.h"
#include "sched/remaining_work.h"
#include "sched/round_robin.h"
#include "sched/work_stealing.h"

using namespace otsched;

namespace {

struct Workload {
  std::string name;
  Instance instance;
  Time opt;  // certified, or 0 for lower-bound denominator
};

std::vector<std::unique_ptr<Scheduler>> MakeZoo(const AdversarialInstance& adv) {
  std::vector<std::unique_ptr<Scheduler>> zoo;
  zoo.push_back(std::make_unique<FifoScheduler>());
  {
    FifoScheduler::Options o;
    o.tie_break = FifoTieBreak::kAvoidMarked;
    // Key-avoiding tie-break; inert on the non-adversarial workloads
    // (their job/node ids fall outside the mask).
    o.deprioritize = [&adv](JobId job, NodeId node) {
      if (job < 0 || static_cast<std::size_t>(job) >= adv.key_mask.size()) {
        return false;
      }
      const auto& mask = adv.key_mask[static_cast<std::size_t>(job)];
      return static_cast<std::size_t>(node) < mask.size() &&
             mask[static_cast<std::size_t>(node)] != 0;
    };
    zoo.push_back(std::make_unique<FifoScheduler>(std::move(o)));
  }
  zoo.push_back(std::make_unique<WorkStealingScheduler>());
  zoo.push_back(std::make_unique<ListGreedyScheduler>(11));
  zoo.push_back(std::make_unique<RoundRobinScheduler>());
  {
    FifoScheduler::Options o;
    o.tie_break = FifoTieBreak::kLpfHeight;
    zoo.push_back(std::make_unique<FifoScheduler>(std::move(o)));
  }
  zoo.push_back(std::make_unique<GlobalLpfScheduler>());
  zoo.push_back(std::make_unique<RemainingWorkScheduler>(
      RemainingWorkOrder::kSmallestFirst));
  {
    AlgAScheduler::Options o;
    o.beta = 16;
    zoo.push_back(std::make_unique<AlgAScheduler>(o));
  }
  return zoo;
}

}  // namespace

int main() {
  std::printf("== E12: the policy zoo (extension experiment) ==\n");
  const int m = 16;
  std::printf("m = %d; ratio denominators: certified OPT where available,\n"
              "else the provable lower bound (conservative).\n\n", m);

  // Workloads.
  LowerBoundSimOptions adv_options;
  adv_options.m = m;
  adv_options.num_jobs = 10 * m;
  const AdversarialInstance adv = MakeAdversarialInstance(adv_options);

  std::vector<Workload> workloads;
  workloads.push_back(
      {"sec4-adversary", adv.instance, adv.fifo_run.certified_opt_upper});
  {
    Rng rng(2);
    CertifiedInstance cert = MakeSpacedSaturatedInstance(m, 8, 10, rng);
    workloads.push_back({"saturated-batches", std::move(cert.instance),
                         cert.opt});
  }
  {
    Rng rng(3);
    Instance qs = MakePoissonArrivals(
        24, 0.05,
        [](std::int64_t, Rng& r) {
          QuicksortOptions q;
          q.n = 1200;
          q.grain = 48;
          q.cutoff = 48;
          return MakeQuicksortTree(q, r);
        },
        rng);
    workloads.push_back({"poisson-quicksort", std::move(qs), 0});
  }

  TextTable table({"policy", "model", "sec4-adversary", "saturated",
                   "poisson-qsort"});
  const std::vector<std::string> models = {
      "non-clair", "non-clair", "non-clair", "non-clair", "non-clair",
      "clairvoyant", "clairvoyant", "clairvoyant", "clairvoyant"};

  // One fresh zoo per workload (schedulers are stateful).
  std::vector<std::vector<double>> ratios(9);
  for (Workload& workload : workloads) {
    auto zoo = MakeZoo(adv);
    for (std::size_t p = 0; p < zoo.size(); ++p) {
      const RatioMeasurement r =
          MeasureRatio(workload.instance, m, *zoo[p], workload.opt);
      ratios[p].push_back(r.ratio);
    }
  }
  auto zoo = MakeZoo(adv);
  for (std::size_t p = 0; p < zoo.size(); ++p) {
    table.row(zoo[p]->name(), models[p], ratios[p][0], ratios[p][1],
              ratios[p][2]);
  }
  table.print();
  std::printf(
      "\nReadings: every NON-clairvoyant policy is hurt by the Section 4\n"
      "family (its damage needs only online information); clairvoyant\n"
      "intra-job shaping (lpf-height / global-lpf) neutralizes it; SRPT\n"
      "is fine here but starves big jobs elsewhere (see tests).  This is\n"
      "the empirical backdrop for the paper's open question: is ANY\n"
      "non-clairvoyant algorithm O(1)-competitive on out-trees?\n");
  return 0;
}
