// E17 — the Section 6 Remark, probed: FIFO beyond batched arrivals.
//
// The paper: "The batched arrival assumption is used crucially in the
// proof ... Even relaxing this assumption slightly (e.g., new jobs can
// arrive only every OPT/2 time steps ...) causes the current proof to
// break down."  And the conjecture: FIFO is Theta(log m) on GENERAL
// instances.
//
// We measure FIFO exactly in the Remark's regime — the certified
// pipelined family, whose batches arrive every OPT/2 with ZERO slack —
// plus a half-quantum-shifted variant, and compare against the batched
// baseline.  If the conjecture is right, the semi-batched ratios should
// stay within the same log-shaped envelope even though the PROOF no
// longer covers them.
#include <cmath>
#include <cstdio>

#include "analysis/ratio.h"
#include "analysis/sweep.h"
#include "common/csv.h"
#include "common/table.h"
#include "gen/certified.h"
#include "gen/tetris.h"
#include "job/transforms.h"
#include "sched/fifo.h"

using namespace otsched;

int main() {
  std::printf("== E17: FIFO on semi-batched instances (the Section 6 "
              "Remark) ==\n\n");

  const std::vector<int> ms = {8, 16, 32, 64, 128};
  const Time delta = 8;

  struct Row {
    int m;
    double batched;       // arrivals every OPT (the Theorem 6.1 regime)
    double semi_batched;  // arrivals every OPT/2 (the Remark's regime)
    double staggered;     // arbitrary offsets (the conjecture's regime)
    double tetris;        // fully packed board, arbitrary releases
  };

  const auto rows = BatchRunner().Map<Row>(ms.size(), [&](std::size_t i) {
    const int m = ms[i];
    Row row{m, 0.0, 0.0, 0.0, 0.0};
    for (int seed = 0; seed < 4; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 523 + m);
      {  // Batched baseline: saturated batches every delta = OPT.
        CertifiedInstance cert =
            MakeSpacedSaturatedInstance(m, delta, 10, rng);
        FifoScheduler fifo;
        row.batched = std::max(
            row.batched, MeasureRatio(cert.instance, m, fifo, cert.opt).ratio);
      }
      {  // Semi-batched: pipelined batches every delta with OPT = 2*delta.
        CertifiedInstance cert =
            MakePipelinedSemiBatchedInstance(m, delta, 10, rng);
        FifoScheduler fifo;
        row.semi_batched = std::max(
            row.semi_batched,
            MeasureRatio(cert.instance, m, fifo, cert.opt).ratio);
      }
      {  // Staggered: shift every other pipelined batch by a few slots;
         // the OPT certificate survives as an upper bound +shift (use the
         // conservative lower-bound denominator instead).
        CertifiedInstance cert =
            MakePipelinedSemiBatchedInstance(m, delta, 10, rng);
        std::vector<Job> jobs;
        for (JobId k = 0; k < cert.instance.job_count(); ++k) {
          const Job& job = cert.instance.job(k);
          const Time shift = (k % 2 == 0) ? 0 : 1 + (k % 3);
          jobs.emplace_back(Dag(job.dag()), job.release() + shift);
        }
        Instance shifted(std::move(jobs), "staggered");
        FifoScheduler fifo;
        row.staggered =
            std::max(row.staggered, MeasureRatio(shifted, m, fifo).ratio);
      }
      {  // Tetris: a perfectly packed board with arbitrary releases and
         // certified exact OPT — the introduction's hardest regime.
        TetrisOptions tetris;
        tetris.m = m;
        tetris.horizon = 16 * delta;
        tetris.mean_duration = delta;
        tetris.max_active = std::min(4, m);
        CertifiedInstance cert = MakeTetrisInstance(tetris, rng);
        FifoScheduler fifo;
        row.tetris = std::max(
            row.tetris, MeasureRatio(cert.instance, m, fifo, cert.opt).ratio);
      }
    }
    return row;
  });

  CsvWriter csv("results/e17_semibatched_fifo.csv",
                {"m", "batched", "semi_batched", "staggered", "tetris"});
  TextTable table({"m", "batched (Thm 6.1)", "semi-batched (Remark)",
                   "staggered*", "tetris full-pack", "log2(m)"});
  for (const Row& row : rows) {
    table.row(row.m, row.batched, row.semi_batched, row.staggered,
              row.tetris, std::log2(static_cast<double>(row.m)));
    csv.row(static_cast<long long>(row.m), row.batched, row.semi_batched,
            row.staggered, row.tetris);
  }
  table.print();
  std::printf(
      "\n* lower-bound denominator (conservative).\n"
      "Reading: FIFO's ratio in the regimes the Theorem 6.1 proof does\n"
      "NOT cover stays right next to the batched column and far below\n"
      "log2(m) on these zero-slack certified families — empirical support\n"
      "for the conjecture that FIFO is Theta(log m) in general, with the\n"
      "Section 4 family (E3) as the worst case.\n"
      "(raw data: e17_semibatched_fifo.csv)\n");
  return 0;
}
