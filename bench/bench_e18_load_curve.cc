// E18 — latency vs offered load (extension; the systems view).
//
// The introduction's "hardest instances" intuition says difficulty comes
// from load: near capacity, an online scheduler must pack essentially
// perfectly.  This bench traces the classic latency-vs-load curve for
// FIFO (non-clairvoyant) and Algorithm A (clairvoyant) on Poisson
// streams of random out-trees at utilizations 0.5 .. 0.95, showing where
// each policy's maximum flow takes off.  Denominators are conservative
// lower bounds.
#include <cstdio>

#include "analysis/ratio.h"
#include "analysis/sweep.h"
#include "common/csv.h"
#include "common/table.h"
#include "core/alg_a_full.h"
#include "gen/arrivals.h"
#include "gen/random_trees.h"
#include "sched/fifo.h"
#include "sched/list_greedy.h"

using namespace otsched;

int main() {
  std::printf("== E18: maximum flow vs offered load (m = 32) ==\n\n");

  const int m = 32;
  const NodeId mean_work = 128;  // ~ per-job subjobs
  const std::vector<double> loads = {0.5, 0.7, 0.8, 0.9, 0.95};
  const int kSeeds = 4;
  const int kJobs = 60;

  struct Row {
    double load;
    double fifo;
    double greedy;
    double alg_a;
  };

  const auto rows = BatchRunner().Map<Row>(loads.size(), [&](std::size_t i) {
    const double load = loads[i];
    // Poisson arrivals with mean gap = work / (load * m).
    const double rate =
        load * static_cast<double>(m) / static_cast<double>(mean_work);
    Row row{load, 0.0, 0.0, 0.0};
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 10601 + i);
      Instance instance = MakePoissonArrivals(
          kJobs, std::min(1.0, rate),
          [&](std::int64_t k, Rng& r) {
            return MakeTree(static_cast<TreeFamily>(k % 4),
                            static_cast<NodeId>(mean_work / 2 +
                                                r.next_below(mean_work)),
                            r);
          },
          rng);
      {
        FifoScheduler fifo;
        row.fifo = std::max(
            row.fifo,
            MeasureRatio(instance, m, fifo, 0, FlowOnlyOptions()).ratio);
      }
      {
        ListGreedyScheduler greedy(static_cast<std::uint64_t>(seed));
        row.greedy = std::max(
            row.greedy,
            MeasureRatio(instance, m, greedy, 0, FlowOnlyOptions()).ratio);
      }
      {
        AlgAScheduler::Options options;
        options.beta = 16;
        AlgAScheduler alg_a(options);
        row.alg_a = std::max(
            row.alg_a,
            MeasureRatio(instance, m, alg_a, 0, FlowOnlyOptions()).ratio);
      }
    }
    return row;
  });

  CsvWriter csv("results/e18_load_curve.csv",
                {"load", "fifo", "list_greedy", "alg_a"});
  TextTable table({"offered load", "FIFO", "list-greedy", "Algorithm A"});
  for (const Row& row : rows) {
    table.row(row.load, row.fifo, row.greedy, row.alg_a);
    csv.row(row.load, row.fifo, row.greedy, row.alg_a);
  }
  table.print();
  std::printf(
      "\nReading: FIFO hugs the lower bound until high load; Algorithm\n"
      "A pays its constant-factor insurance premium at every load (its\n"
      "per-job width cap m/alpha slows light-load jobs) but stays\n"
      "BOUNDED as load -> 1 by Theorem 5.7, which is the regime the\n"
      "paper is about.  list-greedy shows what dropping the age priority\n"
      "costs in the tail.\n"
      "(raw data: e18_load_curve.csv)\n");
  return 0;
}
