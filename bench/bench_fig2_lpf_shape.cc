// E2 — Figure 2: the generic shape of an LPF[m/alpha] schedule.
//
// Claim (Lemma 5.2 + Lemma 5.3): for an out-forest job, the LPF schedule
// on m/alpha processors consists of a "head" of at most OPT[m] slots of
// arbitrary shape followed by a fully packed rectangular "tail" of length
// at most (alpha - 1) * OPT[m].  We sweep tree families, sizes and m, and
// report, per configuration: the worst observed last-underfull slot
// relative to OPT, whether any tail slot was underfull (should never
// happen), and the worst tail length relative to (alpha - 1) * OPT.
#include <cstdio>

#include "analysis/sweep.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/lpf.h"
#include "gen/random_trees.h"
#include "opt/single_batch.h"

using namespace otsched;

namespace {

struct Cell {
  double worst_last_underfull_vs_opt = 0.0;
  double worst_tail_vs_bound = 0.0;
  std::int64_t underfull_tail_slots = 0;
  std::int64_t lemma52_violations = 0;
};

}  // namespace

int main() {
  std::printf("== E2 / Figure 2: head/tail shape of LPF[m/alpha] ==\n");
  std::printf("alpha = 4; 20 seeds per cell; bound checks per Lemma 5.2.\n\n");

  const int kAlpha = 4;
  const std::vector<int> ms = {8, 16, 32, 64};
  const std::vector<TreeFamily> families = {
      TreeFamily::kBushy, TreeFamily::kMixed, TreeFamily::kSpiny,
      TreeFamily::kBranchy};
  const int kSeeds = 20;

  TextTable table({"family", "m", "max lastIdle/OPT", "tail packed",
                   "max tail/(a-1)OPT", "Lemma5.2 ok"});

  struct Config {
    TreeFamily family;
    int m;
  };
  std::vector<Config> configs;
  for (TreeFamily family : families) {
    for (int m : ms) configs.push_back({family, m});
  }

  const auto cells = BatchRunner().Map<Cell>(configs.size(), [&](std::size_t i) {
    const Config& config = configs[i];
    Cell cell;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 1009 + i);
      const NodeId size = static_cast<NodeId>(
          config.m * 20 + static_cast<int>(rng.next_below(200)));
      const Dag tree = MakeTree(config.family, size, rng);
      const Time opt = SingleBatchOpt(tree, config.m);
      const JobSchedule s = BuildLpfSchedule(tree, config.m / kAlpha);

      const Lemma52Report lemma = CheckLemma52(tree, s);
      if (!lemma.holds) ++cell.lemma52_violations;
      if (lemma.last_underfull != kNoTime) {
        cell.worst_last_underfull_vs_opt =
            std::max(cell.worst_last_underfull_vs_opt,
                     static_cast<double>(lemma.last_underfull) /
                         static_cast<double>(opt));
      }
      const HeadTailShape shape = AnalyzeHeadTail(s, opt);
      cell.underfull_tail_slots +=
          static_cast<std::int64_t>(shape.underfull_tail_slots.size());
      if (shape.tail_len > 0) {
        cell.worst_tail_vs_bound =
            std::max(cell.worst_tail_vs_bound,
                     static_cast<double>(shape.tail_len) /
                         static_cast<double>((kAlpha - 1) * opt));
      }
    }
    return cell;
  });

  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Cell& cell = cells[i];
    table.row(ToString(configs[i].family), configs[i].m,
              cell.worst_last_underfull_vs_opt,
              cell.underfull_tail_slots == 0 ? "yes" : "NO",
              cell.worst_tail_vs_bound,
              cell.lemma52_violations == 0 ? "yes" : "NO");
  }
  table.print();
  std::printf(
      "\npaper artifact: Figure 2 — head of <= OPT slots (col 3 <= 1),\n"
      "then a fully packed tail (col 4) of length <= (alpha-1)*OPT\n"
      "(col 5 <= 1).  The ancestor-chain structure of Lemma 5.2 is\n"
      "verified node-by-node (col 6).\n");
  return 0;
}
