// E1 — Figure 1: two feasible packings of one job (DAG) on three
// processors, respecting the DAG structure.
//
// The paper's figure illustrates the scheduler-as-Tetris-player framing:
// the same job admits tight and loose packings.  We regenerate it with a
// height-first (LPF) packing and a height-last packing of a fork-heavy
// out-tree, validate both against the Section 3 axioms, and report their
// lengths against the exact OPT of Corollary 5.4.
#include <algorithm>
#include <cstdio>

#include "common/table.h"
#include "core/lpf.h"
#include "dag/builders.h"
#include "dag/metrics.h"
#include "dag/validate.h"
#include "opt/single_batch.h"
#include "sim/renderer.h"
#include "sim/validator.h"

using namespace otsched;

namespace {

Schedule ToSchedule(const JobSchedule& js, int m) {
  Schedule schedule(m);
  for (Time t = 1; t <= js.length(); ++t) {
    for (NodeId v : js.at(t)) schedule.place(t, SubjobRef{0, v});
  }
  return schedule;
}

// Greedy packing that runs the ready subjobs of LOWEST height first —
// feasible, work-conserving, and deliberately shape-blind.
JobSchedule AntiLpf(const Dag& dag, const DagMetrics& metrics, int p) {
  JobSchedule schedule;
  schedule.p = p;
  schedule.slot_of.assign(static_cast<std::size_t>(dag.node_count()),
                          kNoTime);
  std::vector<NodeId> pending(static_cast<std::size_t>(dag.node_count()));
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    pending[static_cast<std::size_t>(v)] = dag.in_degree(v);
    if (pending[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
  }
  std::int64_t done = 0;
  while (done < dag.node_count()) {
    std::sort(ready.begin(), ready.end(), [&](NodeId a, NodeId b) {
      return metrics.height[static_cast<std::size_t>(a)] <
             metrics.height[static_cast<std::size_t>(b)];
    });
    std::vector<NodeId> slot;
    for (int k = 0; k < p && !ready.empty(); ++k) {
      slot.push_back(ready.front());
      ready.erase(ready.begin());
    }
    schedule.slots.push_back(slot);
    for (NodeId v : slot) {
      schedule.slot_of[static_cast<std::size_t>(v)] = schedule.length();
      ++done;
      for (NodeId c : dag.children(v)) {
        if (--pending[static_cast<std::size_t>(c)] == 0) ready.push_back(c);
      }
    }
  }
  return schedule;
}

}  // namespace

int main() {
  std::printf("== E1 / Figure 1: two packings of one job on 3 processors ==\n\n");
  const int m = 3;
  const Dag dag = MakeSpineWithBursts(3, 2);
  const DagMetrics metrics = ComputeMetrics(dag);
  Instance instance;
  instance.add_job(Job(Dag(dag), 0, "fig1"));

  std::printf("job: %s, work=%lld, span=%lld, OPT[m=3]=%lld\n\n",
              DescribeShape(dag).c_str(),
              static_cast<long long>(metrics.work),
              static_cast<long long>(metrics.span),
              static_cast<long long>(SingleBatchOpt(dag, m)));

  const JobSchedule tight = BuildLpfSchedule(dag, metrics, m);
  const JobSchedule loose = AntiLpf(dag, metrics, m);

  TextTable table({"packing", "slots", "idle-cells", "feasible"});
  const std::vector<std::pair<const JobSchedule*, const char*>> entries = {
      {&tight, "LPF (height-first)"},
      {&loose, "anti-LPF (height-last)"}};
  for (const auto& [packing, label] : entries) {
    const Schedule schedule = ToSchedule(*packing, m);
    const bool ok = ValidateSchedule(schedule, instance).feasible &&
                    CheckJobSchedule(dag, *packing).empty();
    table.row(label, packing->length(), schedule.idle_processor_slots(),
              ok ? "yes" : "NO");
  }
  table.print();

  RenderOptions options;
  options.label_nodes = true;
  std::printf("\nLPF packing (cells = subjob id mod 10):\n%s",
              RenderSchedule(ToSchedule(tight, m), instance, options).c_str());
  std::printf("\nanti-LPF packing of the SAME job:\n%s",
              RenderSchedule(ToSchedule(loose, m), instance, options).c_str());
  std::printf(
      "\npaper artifact: Figure 1 — same DAG, different packings; LPF's is\n"
      "never longer (Lemma 5.3 optimality at full machine width).\n");
  return 0;
}
