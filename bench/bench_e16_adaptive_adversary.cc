// E16 — the generalized adaptive adversary vs the non-clairvoyant zoo
// (extension; probes the conclusion's open question #2: does the
// Omega(log m) phenomenon extend beyond FIFO?).
//
// The adversary fixes every layer at m+1 subjobs and crowns the LAST
// subjob the scheduler finishes in a layer as that layer's key (the
// parent of the whole next layer) — a choice that is invisible online and
// therefore valid against ANY non-clairvoyant policy.  We sweep m and
// report each policy's ratio against the gap = m+2 certificate.
#include <cmath>
#include <cstdio>

#include "advsim/adaptive.h"
#include "analysis/sweep.h"
#include "analysis/timeseries.h"
#include "common/csv.h"
#include "common/table.h"
#include "sched/fifo.h"
#include "sched/list_greedy.h"
#include "sched/round_robin.h"

using namespace otsched;

int main() {
  std::printf("== E16: generalized adaptive adversary vs non-clairvoyant "
              "policies ==\n\n");

  const std::vector<int> ms = {8, 16, 32, 64, 128};

  struct Row {
    int m;
    double fifo;
    double fifo_dfs;
    double fifo_random;
    double greedy;
    double equi;
  };

  const auto rows = BatchRunner().Map<Row>(ms.size(), [&](std::size_t i) {
    const int m = ms[i];
    AdaptiveAdversaryOptions options;
    options.m = m;
    options.num_jobs = std::min<std::int64_t>(12LL * m, 1000);

    auto ratio_of = [&](Scheduler& scheduler) {
      // Only the ratio is read, so skip materializing the schedule.
      const AdaptiveAdversaryResult result =
          RunAdaptiveAdversary(scheduler, options,
                               RunContext{FlowOnlyOptions(), nullptr});
      return static_cast<double>(result.max_flow) /
             static_cast<double>(result.certified_opt_upper);
    };

    Row row{m, 0, 0, 0, 0, 0};
    {
      FifoScheduler fifo;
      row.fifo = ratio_of(fifo);
    }
    {
      FifoScheduler::Options o;
      o.tie_break = FifoTieBreak::kLastReady;  // DFS-flavoured intra-job
      FifoScheduler fifo(std::move(o));
      row.fifo_dfs = ratio_of(fifo);
    }
    {
      FifoScheduler::Options o;
      o.tie_break = FifoTieBreak::kRandom;
      o.seed = 17;
      FifoScheduler fifo(std::move(o));
      row.fifo_random = ratio_of(fifo);
    }
    {
      ListGreedyScheduler greedy(17);
      row.greedy = ratio_of(greedy);
    }
    {
      RoundRobinScheduler equi;
      row.equi = ratio_of(equi);
    }
    return row;
  });

  CsvWriter csv("results/e16_adaptive_adversary.csv",
                {"m", "fifo", "fifo_dfs", "fifo_random", "list_greedy",
                 "equi"});
  TextTable table({"m", "FIFO", "FIFO/dfs", "FIFO/random", "list-greedy",
                   "EQUI", "lgm-lglgm"});
  for (const Row& row : rows) {
    table.row(row.m, row.fifo, row.fifo_dfs, row.fifo_random, row.greedy,
              row.equi,
              std::log2(static_cast<double>(row.m)) -
                  std::log2(std::log2(static_cast<double>(row.m))));
    csv.row(static_cast<long long>(row.m), row.fifo, row.fifo_dfs,
            row.fifo_random, row.greedy, row.equi);
  }
  table.print();
  {
    auto fit_column = [&](auto member, const char* label) {
      std::vector<double> xs;
      std::vector<double> ys;
      for (const Row& row : rows) {
        xs.push_back(static_cast<double>(row.m));
        ys.push_back(row.*member);
      }
      const LogFit fit = FitLogarithm(xs, ys);
      std::printf("  %-12s ratio ~ %.2f * lg(m) %+.2f (R^2 %.3f)\n", label,
                  fit.slope, fit.intercept, fit.r_squared);
    };
    std::printf("\nfitted growth rates:\n");
    fit_column(&Row::fifo, "FIFO");
    fit_column(&Row::greedy, "list-greedy");
    fit_column(&Row::equi, "EQUI");
  }
  std::printf(
      "\nReading: growth in a column = evidence the Omega(log m)\n"
      "phenomenon extends to that policy under the last-finished-key\n"
      "adversary; a flat column = this particular generalization fails\n"
      "there (consistent with the paper's remark that extending the\n"
      "lower bound to arbitrary non-clairvoyant algorithms is not\n"
      "straightforward).  Either outcome is informative — the paper\n"
      "leaves the non-clairvoyant question open in both directions.\n"
      "(raw data: e16_adaptive_adversary.csv)\n");
  return 0;
}
