// E11 — microbenchmarks of the simulation substrate (google-benchmark).
//
// Not a paper artifact per se; these numbers document why the Theorem 4.2
// sweep can reach m = 4096 (lbsim slot cost) and what the generic engine,
// LPF construction, MC replay, and metric computation cost.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "advsim/adaptive.h"
#include "analysis/section6.h"
#include "core/lpf.h"
#include "dag/builders.h"
#include "sim/trace.h"
#include "core/most_children.h"
#include "dag/metrics.h"
#include "gen/certified.h"
#include "gen/random_trees.h"
#include "lbsim/lbsim.h"
#include "sched/fifo.h"
#include "sim/engine.h"
#include "sim/job_faults.h"
#include "sim/observers.h"

namespace {

// Binary-wide heap instrumentation for the record-mode rows: every
// allocation routes through a header-tagged malloc so live/peak bytes are
// exact.  Counter reads happen only from untimed probe sections, so the
// relaxed atomics add one uncontended RMW per alloc to the timed loops —
// identical overhead for every row, so before/after deltas stay honest.
std::atomic<std::int64_t> g_alloc_count{0};
std::atomic<std::int64_t> g_live_bytes{0};
std::atomic<std::int64_t> g_peak_bytes{0};

constexpr std::size_t kHeader = alignof(std::max_align_t);

void* TrackedAlloc(std::size_t size) {
  void* raw = std::malloc(size + kHeader);
  if (raw == nullptr) return nullptr;
  *static_cast<std::size_t*>(raw) = size;
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t live =
      g_live_bytes.fetch_add(static_cast<std::int64_t>(size),
                             std::memory_order_relaxed) +
      static_cast<std::int64_t>(size);
  std::int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak_bytes.compare_exchange_weak(peak, live,
                                             std::memory_order_relaxed)) {
  }
  return static_cast<char*>(raw) + kHeader;
}

// GCC flags the header-offset free as a new/delete mismatch when it
// inlines this into container destructors; the pairing is correct by
// construction (every tracked pointer came from TrackedAlloc).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#pragma GCC diagnostic ignored "-Warray-bounds"
void TrackedFree(void* ptr) noexcept {
  if (ptr == nullptr) return;
  void* raw = static_cast<char*>(ptr) - kHeader;
  g_live_bytes.fetch_sub(
      static_cast<std::int64_t>(*static_cast<std::size_t*>(raw)),
      std::memory_order_relaxed);
  std::free(raw);
}
#pragma GCC diagnostic pop

}  // namespace

// Only the plain forms are replaced; the array, nothrow, and sized
// variants forward here by default.  Over-aligned allocations keep their
// default (untracked) operators, whose deallocation pairs match.
void* operator new(std::size_t size) {
  void* ptr = TrackedAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void operator delete(void* ptr) noexcept { TrackedFree(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { TrackedFree(ptr); }

namespace otsched {
namespace {

/// Scoped heap meter: allocation count and peak-live delta since
/// construction.  Use around one untimed run; the counters land in
/// benchmark::State::counters.
class AllocProbe {
 public:
  AllocProbe()
      : base_count_(g_alloc_count.load(std::memory_order_relaxed)),
        base_live_(g_live_bytes.load(std::memory_order_relaxed)) {
    g_peak_bytes.store(base_live_, std::memory_order_relaxed);
  }

  double allocations() const {
    return static_cast<double>(
        g_alloc_count.load(std::memory_order_relaxed) - base_count_);
  }
  double peak_bytes() const {
    return static_cast<double>(
        g_peak_bytes.load(std::memory_order_relaxed) - base_live_);
  }

 private:
  std::int64_t base_count_;
  std::int64_t base_live_;
};

void BM_DagMetrics(benchmark::State& state) {
  Rng rng(1);
  const Dag tree =
      MakeAttachmentTree(static_cast<NodeId>(state.range(0)), 0.5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMetrics(tree));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DagMetrics)->Arg(1000)->Arg(100000);

void BM_LpfBuild(benchmark::State& state) {
  Rng rng(2);
  const Dag tree =
      MakeAttachmentTree(static_cast<NodeId>(state.range(0)), 0.5, rng);
  const DagMetrics metrics = ComputeMetrics(tree);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildLpfSchedule(tree, metrics, 16));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LpfBuild)->Arg(1000)->Arg(100000);

void BM_McReplay(benchmark::State& state) {
  Rng rng(3);
  const Dag tree =
      MakeAttachmentTree(static_cast<NodeId>(state.range(0)), 0.3, rng);
  const JobSchedule lpf = BuildLpfSchedule(tree, 16);
  for (auto _ : state) {
    MostChildrenReplayer mc(tree, lpf);
    while (!mc.done()) mc.step(16);
    benchmark::DoNotOptimize(mc.now());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_McReplay)->Arg(1000)->Arg(20000);

void BM_EngineFifo(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(4);
  CertifiedInstance cert = MakeSpacedSaturatedInstance(m, 8, 6, rng);
  for (auto _ : state) {
    FifoScheduler fifo;
    benchmark::DoNotOptimize(Simulate(cert.instance, m, fifo));
  }
  state.SetItemsProcessed(state.iterations() * cert.instance.total_work());
}
BENCHMARK(BM_EngineFifo)->Arg(16)->Arg(128);

/// Large sparse workload for the incremental-vs-reference engine rows:
/// many alive chain jobs (large alive set, exactly one ready subjob per
/// alive job) over a long horizon.  Per-slot the reference engine pays
/// O(alive) for its alive-list sweep; the incremental engine pays O(m).
Instance MakeSparseChainInstance(int jobs, NodeId chain_len) {
  Instance instance;
  instance.set_name("sparse-chains");
  for (int j = 0; j < jobs; ++j) {
    instance.add_job(Job(MakeChain(chain_len), 0));
  }
  return instance;
}

/// items processed = engine slots simulated, so the before/after pair
/// reads directly as slots-per-second (the docs/REPRODUCING.md table).
void BM_EngineSparseIncremental(benchmark::State& state) {
  const Instance instance =
      MakeSparseChainInstance(static_cast<int>(state.range(0)), 32);
  {
    // Untimed probe run: heap cost of one full-record simulation.
    FifoScheduler fifo;
    const AllocProbe probe;
    const SimResult result = Simulate(instance, 8, fifo);
    benchmark::DoNotOptimize(result.flows.max_flow);
    state.counters["allocs"] = probe.allocations();
    state.counters["peak_bytes"] = probe.peak_bytes();
  }
  std::int64_t horizon = 0;
  for (auto _ : state) {
    FifoScheduler fifo;
    const SimResult result = Simulate(instance, 8, fifo);
    horizon = result.stats.horizon;
    benchmark::DoNotOptimize(result.flows.max_flow);
  }
  state.SetItemsProcessed(state.iterations() * horizon);
}
BENCHMARK(BM_EngineSparseIncremental)->Arg(512)->Arg(2048);

/// The record-mode payoff row: the same workload with
/// RecordMode::kFlowOnly, so no Schedule is materialized — flows and
/// stats are tracked online.  Compare allocs/peak_bytes against
/// BM_EngineSparseIncremental for the docs/REPRODUCING.md table.
void BM_EngineSparseFlowOnly(benchmark::State& state) {
  const Instance instance =
      MakeSparseChainInstance(static_cast<int>(state.range(0)), 32);
  {
    FifoScheduler fifo;
    const AllocProbe probe;
    const SimResult result = Simulate(instance, 8, fifo, FlowOnlyOptions());
    benchmark::DoNotOptimize(result.flows.max_flow);
    state.counters["allocs"] = probe.allocations();
    state.counters["peak_bytes"] = probe.peak_bytes();
  }
  std::int64_t horizon = 0;
  for (auto _ : state) {
    FifoScheduler fifo;
    const SimResult result = Simulate(instance, 8, fifo, FlowOnlyOptions());
    horizon = result.stats.horizon;
    benchmark::DoNotOptimize(result.flows.max_flow);
  }
  state.SetItemsProcessed(state.iterations() * horizon);
}
BENCHMARK(BM_EngineSparseFlowOnly)->Arg(512)->Arg(2048);

/// Flow-only with the metrics observer attached: the sweep-pipeline
/// configuration (BatchRunner cells default to exactly this).
void BM_EngineSparseFlowOnlyObserved(benchmark::State& state) {
  const Instance instance =
      MakeSparseChainInstance(static_cast<int>(state.range(0)), 32);
  std::int64_t horizon = 0;
  for (auto _ : state) {
    FifoScheduler fifo;
    MetricsRegistry registry;
    MetricsObserver::Options options;
    options.record_pick_times = false;
    MetricsObserver metrics(registry, options);
    RunContext context{FlowOnlyOptions(), &metrics};
    const SimResult result = Simulate(instance, 8, fifo, context);
    horizon = result.stats.horizon;
    benchmark::DoNotOptimize(result.flows.max_flow);
  }
  state.SetItemsProcessed(state.iterations() * horizon);
}
BENCHMARK(BM_EngineSparseFlowOnlyObserved)->Arg(512)->Arg(2048);

/// Same workload with a full MetricsObserver attached (per-slot series
/// on, pick timing off): the delta against BM_EngineSparseIncremental is
/// the observability overhead budget (<5% is the acceptance bar; with no
/// observer the hook sites are null-pointer checks).
void BM_EngineSparseObserved(benchmark::State& state) {
  const Instance instance =
      MakeSparseChainInstance(static_cast<int>(state.range(0)), 32);
  std::int64_t horizon = 0;
  for (auto _ : state) {
    FifoScheduler fifo;
    MetricsRegistry registry;
    MetricsObserver::Options options;
    options.record_pick_times = false;
    MetricsObserver metrics(registry, options);
    RunContext context;
    context.observer = &metrics;
    const SimResult result = Simulate(instance, 8, fifo, context);
    horizon = result.stats.horizon;
    benchmark::DoNotOptimize(result.flows.max_flow);
  }
  state.SetItemsProcessed(state.iterations() * horizon);
}
BENCHMARK(BM_EngineSparseObserved)->Arg(512)->Arg(2048);

/// A minimal native batch consumer: counts events straight off the
/// SlotEvent records, never replaying the fine-grained hooks.  The delta
/// against BM_EngineSparseFlowOnly is the floor cost of batched
/// observation itself (ring append + two virtual calls per slot), with
/// no sink work on top.
class BatchCountingObserver final : public otsched::RunObserver {
 public:
  void on_slot_batch(const EngineBackend&,
                     std::span<const SlotEvent> events) override {
    events_ += static_cast<std::int64_t>(events.size());
  }
  bool wants_pick_timing() const override { return false; }
  std::int64_t events() const { return events_; }

 private:
  std::int64_t events_ = 0;
};

void BM_EngineSparseBatchedObserved(benchmark::State& state) {
  const Instance instance =
      MakeSparseChainInstance(static_cast<int>(state.range(0)), 32);
  std::int64_t horizon = 0;
  for (auto _ : state) {
    FifoScheduler fifo;
    BatchCountingObserver batches;
    RunContext context{FlowOnlyOptions(), &batches};
    const SimResult result = Simulate(instance, 8, fifo, context);
    horizon = result.stats.horizon;
    benchmark::DoNotOptimize(batches.events());
    benchmark::DoNotOptimize(result.flows.max_flow);
  }
  state.SetItemsProcessed(state.iterations() * horizon);
}
BENCHMARK(BM_EngineSparseBatchedObserved)->Arg(512)->Arg(2048);

void BM_EngineSparseReference(benchmark::State& state) {
  const Instance instance =
      MakeSparseChainInstance(static_cast<int>(state.range(0)), 32);
  std::int64_t horizon = 0;
  for (auto _ : state) {
    FifoScheduler fifo;
    const SimResult result = ReferenceSimulate(instance, 8, fifo);
    horizon = result.stats.horizon;
    benchmark::DoNotOptimize(result.flows.max_flow);
  }
  state.SetItemsProcessed(state.iterations() * horizon);
}
BENCHMARK(BM_EngineSparseReference)->Arg(512)->Arg(2048);

void BM_LbSimSlots(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    LowerBoundSimOptions options;
    options.m = m;
    options.num_jobs = 4LL * m;
    options.record_sublayer_trace = false;
    const LowerBoundSimResult result = RunLowerBoundSim(options);
    benchmark::DoNotOptimize(result.max_flow);
  }
  // items = simulated slots (horizon ~ num_jobs * (m+1)).
  state.SetItemsProcessed(state.iterations() * 4LL * m * (m + 1));
}
BENCHMARK(BM_LbSimSlots)->Arg(64)->Arg(512);

void BM_AdaptiveAdversary(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    FifoScheduler fifo;
    AdaptiveAdversaryOptions options;
    options.m = m;
    options.num_jobs = 2LL * m;
    benchmark::DoNotOptimize(RunAdaptiveAdversary(fifo, options).max_flow);
  }
  state.SetItemsProcessed(state.iterations() * 2LL * m * m * (m + 1));
}
BENCHMARK(BM_AdaptiveAdversary)->Arg(16)->Arg(64);

void BM_Section6Checker(benchmark::State& state) {
  Rng rng(9);
  CertifiedInstance cert = MakeSpacedSaturatedInstance(
      static_cast<int>(state.range(0)), 8, 8, rng);
  FifoScheduler fifo;
  // Full-record run: the Section 6 invariant checker walks the
  // materialized slot-by-slot schedule.
  const SimResult run =
      Simulate(cert.instance, static_cast<int>(state.range(0)), fifo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CheckSection6Invariants(run.full_schedule(), cert.instance,
                                static_cast<int>(state.range(0)), cert.opt)
            .checks);
  }
  state.SetItemsProcessed(state.iterations() * cert.instance.total_work());
}
BENCHMARK(BM_Section6Checker)->Arg(16)->Arg(64);

void BM_TraceDerive(benchmark::State& state) {
  Rng rng(10);
  CertifiedInstance cert = MakeSpacedSaturatedInstance(16, 8, 12, rng);
  FifoScheduler fifo;
  // Full-record run: DeriveTrace reconstructs events from the
  // materialized schedule.
  const SimResult run = Simulate(cert.instance, 16, fifo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DeriveTrace(run.full_schedule(), cert.instance).size());
  }
  state.SetItemsProcessed(state.iterations() * cert.instance.total_work());
}
BENCHMARK(BM_TraceDerive);

void BM_SaturatedGenerator(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    benchmark::DoNotOptimize(MakeSaturatedForest(m, 8, 6, rng));
  }
  state.SetItemsProcessed(state.iterations() * m * 8);
}
BENCHMARK(BM_SaturatedGenerator)->Arg(16)->Arg(256);

/// Reversible-core row: the sparse chain workload of the
/// BM_EngineSparse* family under an active random-crash model with
/// every-slots checkpointing.  The delta against BM_EngineSparseFlowOnly
/// prices the rollback machinery when it actually fires (commit-frontier
/// bookkeeping, ready-region rebuilds, wasted-work accounting); the
/// no-lost-work budget — armed-but-silent within 5% of faults-off — is
/// enforced on BM_EngineSparseFlowOnly* itself by
/// tools/check_bench_trend.py, since arming with rate 0 walks the
/// identical per-slot code paths minus the rebuilds.  Registered last so
/// the family indices of the committed baseline rows stay stable.
void BM_EngineSparseRollback(benchmark::State& state) {
  const Instance instance =
      MakeSparseChainInstance(static_cast<int>(state.range(0)), 32);
  SimOptions options = FlowOnlyOptions();
  options.job_faults.model = JobFaultModel::kRandomCrash;
  options.job_faults.seed = 11;
  options.job_faults.rate = 0.02;
  options.job_faults.checkpoint = CheckpointPolicy::kEveryKSlots;
  options.job_faults.checkpoint_every = 8;
  std::int64_t horizon = 0;
  std::int64_t wasted = 0;
  for (auto _ : state) {
    FifoScheduler fifo;
    const SimResult result = Simulate(instance, 8, fifo, options);
    horizon = result.stats.horizon;
    wasted = result.stats.wasted_subjob_slots;
    benchmark::DoNotOptimize(result.flows.max_flow);
  }
  state.counters["wasted_slots"] = static_cast<double>(wasted);
  state.SetItemsProcessed(state.iterations() * horizon);
}
BENCHMARK(BM_EngineSparseRollback)->Arg(512)->Arg(2048);

}  // namespace
}  // namespace otsched
