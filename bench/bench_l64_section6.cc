// E14 — Lemma 6.4 / Proposition 6.2: the Section 6 bookkeeping, verified
// on real FIFO runs.
//
// Theorem 6.1's induction rests on per-job invariants relating remaining
// work w_i(t), restricted idle time z_i(t), and OPT.  This bench replays
// FIFO on batched workloads (certified OPT) and on the Section 4 family
// and checks every invariant at every slot, reporting how tight Lemma 6.4
// gets (w_i(t) / ((OPT - z_i(t)) m), max over i, t) and how much of the
// z <= OPT budget FIFO actually burns.
#include <cstdio>

#include "analysis/section6.h"
#include "analysis/sweep.h"
#include "common/table.h"
#include "gen/certified.h"
#include "gen/fifo_adversary.h"
#include "sched/fifo.h"
#include "sim/engine.h"

using namespace otsched;

int main() {
  std::printf("== E14 / Lemma 6.4 + Prop 6.2: Section 6 invariants ==\n\n");

  const std::vector<int> ms = {4, 8, 16, 32, 64};

  struct Row {
    int m;
    bool forest_ok;
    double forest_tightness;
    double forest_z_share;  // max_z / OPT
    bool adversary_ok;
    double adversary_tightness;
    double adversary_z_share;
    std::int64_t checks;
    bool lemma65_ok = true;
    std::int64_t max_alive = 0;
    int log_tau = 0;
  };

  const auto rows = BatchRunner().Map<Row>(ms.size(), [&](std::size_t i) {
    const int m = ms[i];
    Row row{m, true, 0.0, 0.0, true, 0.0, 0.0, 0};

    for (int seed = 0; seed < 3; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 4799 + m);
      CertifiedInstance cert = MakeSpacedSaturatedInstance(m, 8, 8, rng);
      FifoScheduler fifo;
      // Full-record run: the Section 6 invariant checker walks the
      // materialized schedule.
      const SimResult run = Simulate(cert.instance, m, fifo);
      const Section6Report report = CheckSection6Invariants(
          run.full_schedule(), cert.instance, m, cert.opt);
      row.forest_ok = row.forest_ok && report.all_hold();
      row.forest_tightness =
          std::max(row.forest_tightness, report.lemma64_tightness);
      row.forest_z_share = std::max(
          row.forest_z_share,
          static_cast<double>(report.max_z) / static_cast<double>(cert.opt));
      row.checks += report.checks;
    }
    {
      LowerBoundSimOptions options;
      options.m = m;
      options.num_jobs = 8 * m;
      const AdversarialInstance adv = MakeAdversarialInstance(options);
      FifoScheduler::Options avoid;
      avoid.tie_break = FifoTieBreak::kAvoidMarked;
      avoid.deprioritize = [&adv](JobId job, NodeId node) {
        return adv.is_key(job, node);
      };
      FifoScheduler fifo(std::move(avoid));
      // Full-record run: the Section 6 / Lemma 6.5 checkers walk the
      // materialized schedule.
      const SimResult run = Simulate(adv.instance, m, fifo);
      const Section6Report report =
          CheckSection6Invariants(run.full_schedule(), adv.instance, m,
                                  adv.fifo_run.certified_opt_upper);
      row.adversary_ok = report.all_hold();
      row.adversary_tightness = report.lemma64_tightness;
      row.adversary_z_share =
          static_cast<double>(report.max_z) /
          static_cast<double>(adv.fifo_run.certified_opt_upper);
      row.checks += report.checks;
      // The main lemma (Lemma 6.5): the inductive inequalities at every
      // arrival boundary, plus the log(tau)+1 cap on alive jobs.
      const Lemma65Report main_lemma = CheckLemma65(
          run.full_schedule(), adv.instance, m, adv.fifo_run.certified_opt_upper);
      row.lemma65_ok = main_lemma.all_hold();
      row.max_alive = main_lemma.max_alive_at_boundary;
      row.log_tau = main_lemma.log_tau;
    }
    return row;
  });

  TextTable table({"m", "batched ok", "tightness", "z/OPT", "adversary ok",
                   "tightness", "z/OPT", "Lemma6.5", "alive<=lgTau+1",
                   "checks"});
  bool all_ok = true;
  for (const Row& row : rows) {
    all_ok = all_ok && row.forest_ok && row.adversary_ok && row.lemma65_ok;
    char alive[32];
    std::snprintf(alive, sizeof(alive), "%lld <= %d",
                  static_cast<long long>(row.max_alive), row.log_tau + 1);
    table.row(row.m, row.forest_ok ? "yes" : "NO", row.forest_tightness,
              row.forest_z_share, row.adversary_ok ? "yes" : "NO",
              row.adversary_tightness, row.adversary_z_share,
              row.lemma65_ok ? "yes" : "NO", alive, row.checks);
  }
  table.print();
  std::printf(
      "\npaper artifact: the Lemma 6.4 inequality w <= (OPT - z)m and the\n"
      "Prop 6.2 structure (idle S_i step => job i runs a subjob ending a\n"
      ">= z_i path; z_i <= OPT) hold at every slot of every run: %s.\n"
      "The adversarial family drives both the tightness and the z budget\n"
      "toward 1 — it is exactly the input the induction must survive.\n",
      all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
