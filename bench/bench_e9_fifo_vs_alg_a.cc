// E9 — the paper's headline separation, head to head.
//
// On the Section 4 family, as m grows:
//   * arbitrary (non-clairvoyant) FIFO's ratio grows like lg m - lg lg m
//     (Theorem 4.2);
//   * clairvoyant Algorithm A's ratio stays CONSTANT (Theorem 5.7);
//   * clairvoyant FIFO (LPF-height tie-break) collapses to ~1, showing
//     the damage is entirely in the intra-job subjob choice.
//
// Note the constants: Algorithm A's flat ratio starts higher than FIFO's
// slowly-growing curve, so the curves cross only at astronomically large
// m — exactly what "O(1) vs Theta(log m)" predicts.  The artifact here is
// the pair of TRENDS, not a small-m win.
#include <cmath>
#include <cstdio>

#include "analysis/sweep.h"
#include "common/csv.h"
#include "common/table.h"
#include "core/alg_a.h"
#include "gen/fifo_adversary.h"
#include "sched/fifo.h"
#include "sim/validator.h"

using namespace otsched;

int main() {
  std::printf("== E9: FIFO vs Algorithm A on the Section 4 family ==\n\n");

  const std::vector<int> ms = {8, 16, 32, 64, 128};

  struct Row {
    int m;
    double fifo_ratio;
    double alg_a_ratio;
    double clairvoyant_fifo_ratio;
  };

  const auto rows = BatchRunner().Map<Row>(ms.size(), [&](std::size_t i) {
    const int m = ms[i];
    LowerBoundSimOptions options;
    options.m = m;
    options.num_jobs = std::min<std::int64_t>(12LL * m, 1200);
    const AdversarialInstance adv = MakeAdversarialInstance(options);
    const double opt_upper =
        static_cast<double>(adv.fifo_run.certified_opt_upper);

    Row row{m, 0.0, 0.0, 0.0};
    row.fifo_ratio = static_cast<double>(adv.fifo_run.max_flow) / opt_upper;

    {
      AlgASemiBatchedScheduler::Options a_options;
      a_options.known_opt = 2 * (m + 1);
      AlgASemiBatchedScheduler alg_a(a_options);
      const SimResult result = Simulate(adv.instance, m, alg_a);
      row.alg_a_ratio =
          static_cast<double>(result.flows.max_flow) / opt_upper;
    }
    {
      FifoScheduler::Options lpf_options;
      lpf_options.tie_break = FifoTieBreak::kLpfHeight;
      FifoScheduler lpf_fifo(std::move(lpf_options));
      const SimResult result = Simulate(adv.instance, m, lpf_fifo);
      row.clairvoyant_fifo_ratio =
          static_cast<double>(result.flows.max_flow) / opt_upper;
    }
    return row;
  });

  CsvWriter csv("results/e9_fifo_vs_alg_a.csv",
                {"m", "fifo_ratio", "alg_a_ratio", "clairvoyant_fifo"});
  TextTable table({"m", "arbitrary FIFO", "Algorithm A", "clairvoyant FIFO",
                   "lgm-lglgm"});
  for (const Row& row : rows) {
    table.row(row.m, row.fifo_ratio, row.alg_a_ratio,
              row.clairvoyant_fifo_ratio,
              std::log2(static_cast<double>(row.m)) -
                  std::log2(std::log2(static_cast<double>(row.m))));
    csv.row(static_cast<long long>(row.m), row.fifo_ratio, row.alg_a_ratio,
            row.clairvoyant_fifo_ratio);
  }
  table.print();

  const double fifo_growth = rows.back().fifo_ratio / rows.front().fifo_ratio;
  const double a_growth =
      rows.back().alg_a_ratio / rows.front().alg_a_ratio;
  std::printf(
      "\ntrend over m = %d..%d: FIFO ratio grew %.2fx, Algorithm A's "
      "%.2fx.\n"
      "paper artifact: Omega(log m) for FIFO (growing column 2) vs O(1)\n"
      "for Algorithm A (flat column 3); clairvoyance alone already fixes\n"
      "FIFO on this family (column 4 ~ 1).\n"
      "(raw data: e9_fifo_vs_alg_a.csv)\n",
      ms.front(), ms.back(), fifo_growth, a_growth);
  return 0;
}
