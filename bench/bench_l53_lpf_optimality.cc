// E4 — Lemma 5.3 / Corollary 5.4: LPF optimality for single out-forests.
//
// For every (family, m) cell over many random out-forests:
//   * LPF on m processors must match the Corollary 5.4 closed form
//     max_d (d + ceil(W(d)/m)) EXACTLY (count of exact matches reported);
//   * LPF on m/4 processors must stay within 4x OPT (worst ratio
//     reported, per Lemma 5.3's alpha-competitiveness).
#include <cstdio>

#include "analysis/sweep.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/lpf.h"
#include "gen/random_trees.h"
#include "opt/single_batch.h"

using namespace otsched;

int main() {
  std::printf("== E4 / Lemma 5.3 + Corollary 5.4: LPF optimality ==\n");
  const int kSeeds = 50;
  std::printf("%d random out-forests per cell.\n\n", kSeeds);

  const std::vector<int> ms = {4, 8, 16, 32, 64};
  const std::vector<TreeFamily> families = {
      TreeFamily::kBushy, TreeFamily::kMixed, TreeFamily::kSpiny,
      TreeFamily::kBranchy};

  struct Cell {
    int exact = 0;
    double worst_reduced_ratio = 0.0;
  };
  struct Config {
    TreeFamily family;
    int m;
  };
  std::vector<Config> configs;
  for (TreeFamily family : families) {
    for (int m : ms) configs.push_back({family, m});
  }

  const auto cells = BatchRunner().Map<Cell>(configs.size(), [&](std::size_t i) {
    const Config& config = configs[i];
    Cell cell;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 7907 + i);
      // Mix single trees and multi-tree forests.
      const NodeId size =
          static_cast<NodeId>(60 + rng.next_below(600));
      Dag forest;
      if (seed % 3 == 0) {
        forest = MakeRandomForest(size, 3, 0.5, rng);
      } else {
        forest = MakeTree(config.family, size, rng);
      }
      const Time opt = SingleBatchOpt(forest, config.m);
      const JobSchedule full = BuildLpfSchedule(forest, config.m);
      if (full.length() == opt) ++cell.exact;

      const JobSchedule reduced =
          BuildLpfSchedule(forest, std::max(1, config.m / 4));
      cell.worst_reduced_ratio = std::max(
          cell.worst_reduced_ratio, static_cast<double>(reduced.length()) /
                                        static_cast<double>(opt));
    }
    return cell;
  });

  TextTable table({"family", "m", "LPF[m]==OPT", "worst LPF[m/4]/OPT",
                   "within 4x"});
  bool all_exact = true;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Cell& cell = cells[i];
    all_exact = all_exact && cell.exact == kSeeds;
    char exact[32];
    std::snprintf(exact, sizeof(exact), "%d/%d", cell.exact, kSeeds);
    table.row(ToString(configs[i].family), configs[i].m, exact,
              cell.worst_reduced_ratio,
              cell.worst_reduced_ratio <= 4.0 + 1e-9 ? "yes" : "NO");
  }
  table.print();
  std::printf(
      "\npaper artifact: Lemma 5.3 — LPF is optimal on m processors\n"
      "(col 3 all exact: %s) and alpha-competitive on m/alpha (col 4 <= 4).\n"
      "Corollary 5.4 — OPT = max_d (d + ceil(W(d)/m)) is what col 3\n"
      "compares against.\n",
      all_exact ? "yes" : "NO");
  return 0;
}
