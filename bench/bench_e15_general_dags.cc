// E15 — the conclusion's open question, measured: Algorithm A's shaping
// recipe applied verbatim to series-parallel / general DAGs.
//
// The paper: "while longest path first is an optimal heuristic for trees
// for intra-job scheduling, there is no such optimal heuristic for DAGs.
// Therefore, shaping a DAG is significantly more challenging."  This
// bench runs the heuristic extension (LPF shaping + MC replay, out-forest
// precondition dropped) on batched series-parallel workloads and reports:
//   * whether LPF[m] still matches the depth-profile bound (it is only a
//     LOWER bound for DAGs — gaps mark where Corollary 5.4 fails),
//   * Algorithm A's achieved ratio (vs conservative lower bounds),
//   * MC busy violations (where the Lemma 5.5 guarantee breaks).
#include <cstdio>

#include "analysis/ratio.h"
#include "analysis/sweep.h"
#include "common/table.h"
#include "core/alg_a_full.h"
#include "core/lpf.h"
#include "gen/arrivals.h"
#include "gen/recursive.h"
#include "gen/series_parallel.h"
#include "opt/lower_bounds.h"
#include "sched/fifo.h"

using namespace otsched;

int main() {
  std::printf("== E15: the general-DAG frontier (extension) ==\n\n");

  // Part 1: how often does LPF stay optimal on series-parallel DAGs?
  {
    std::printf("LPF[m] vs the depth-profile lower bound on random\n"
                "map-reduce pipelines and series-parallel DAGs (the bound\n"
                "is only a lower bound for DAGs; gaps mark where tree-style\n"
                "shaping falls short):\n\n");
    TextTable table({"m", "exact", "gap<=1 slot", "worst gap (slots)"});
    for (int m : {2, 4, 8, 16}) {
      int exact = 0;
      int near = 0;
      Time worst_gap = 0;
      for (int seed = 0; seed < 60; ++seed) {
        Rng rng(static_cast<std::uint64_t>(seed) * 887 + m);
        Dag dag;
        if (seed % 2 == 0) {
          dag = MakeMapReducePipeline(
              2 + static_cast<int>(rng.next_below(4)), 3 * m, rng);
        } else {
          SeriesParallelOptions sp;
          sp.size = static_cast<NodeId>(6 * m);
          sp.parallel_p = 0.6;
          dag = MakeSeriesParallelDag(sp, rng);
        }
        Job job(Dag(dag), 0);
        const Time lower = DepthProfileBound(job, m);
        const JobSchedule s = BuildLpfSchedule(dag, m);
        const Time gap = s.length() - lower;
        if (gap == 0) ++exact;
        if (gap <= 1) ++near;
        worst_gap = std::max(worst_gap, gap);
      }
      table.row(m, exact, near, worst_gap);
    }
    table.print();
  }

  // Part 2: Algorithm A (heuristic mode) vs FIFO on batched
  // series-parallel streams.
  std::printf("\nAlgorithm A (allow_general_dags) vs FIFO, batched\n"
              "map-reduce streams (ratios vs conservative lower bounds):\n\n");
  struct Row {
    int m;
    double fifo;
    double alg_a;
    double alg_a_cert;
    double fifo_sp;
    double alg_a_sp;
    double alg_a_sp_cert;
    std::int64_t mc_violations;
  };
  const std::vector<int> ms = {8, 16, 32, 64};
  const auto rows = BatchRunner().Map<Row>(ms.size(), [&](std::size_t i) {
    const int m = ms[i];
    Row row{m, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0};
    for (int seed = 0; seed < 3; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 119 + m);
      Instance mapreduce = MakePeriodicArrivals(
          10, 8,
          [m](std::int64_t, Rng& r) {
            return MakeMapReducePipeline(
                2 + static_cast<int>(r.next_below(3)), 2 * m, r);
          },
          rng);
      Instance sp = MakePeriodicArrivals(
          10, 8,
          [m](std::int64_t, Rng& r) {
            SeriesParallelOptions options;
            options.size = static_cast<NodeId>(4 * m);
            options.parallel_p = 0.6;
            return MakeSeriesParallelDag(options, r);
          },
          rng);
      {
        FifoScheduler fifo1;
        FifoScheduler fifo2;
        row.fifo =
            std::max(row.fifo, MeasureRatio(mapreduce, m, fifo1).ratio);
        row.fifo_sp =
            std::max(row.fifo_sp, MeasureRatio(sp, m, fifo2).ratio);
      }
      {
        AlgAScheduler::Options options;
        options.beta = 16;
        options.allow_general_dags = true;
        AlgAScheduler alg_a1(options);
        AlgAScheduler alg_a2(options);
        // Heuristic denominators can be loose on DAGs; the attached
        // max-flow certificate (opt/flow_network) is verified in-process
        // and sound on arbitrary DAGs, so the *_cert ratios are true
        // upper bounds on Algorithm A's competitive ratio here.
        RatioMeasurement a1 = MeasureRatio(mapreduce, m, alg_a1);
        AttachCertificate(a1, mapreduce);
        RatioMeasurement a2 = MeasureRatio(sp, m, alg_a2);
        AttachCertificate(a2, sp);
        row.alg_a = std::max(row.alg_a, a1.ratio);
        row.alg_a_cert = std::max(row.alg_a_cert, a1.ratio_vs_certificate);
        row.alg_a_sp = std::max(row.alg_a_sp, a2.ratio);
        row.alg_a_sp_cert =
            std::max(row.alg_a_sp_cert, a2.ratio_vs_certificate);
        row.mc_violations +=
            alg_a1.mc_busy_violations() + alg_a2.mc_busy_violations();
      }
    }
    return row;
  });

  TextTable table({"m", "FIFO mapred*", "AlgA mapred*", "AlgA mapred^",
                   "FIFO sp*", "AlgA sp*", "AlgA sp^", "MC violations"});
  for (const Row& row : rows) {
    table.row(row.m, row.fifo, row.alg_a, row.alg_a_cert, row.fifo_sp,
              row.alg_a_sp, row.alg_a_sp_cert, row.mc_violations);
  }
  table.print();
  std::printf(
      "\n* conservative lower-bound denominators.\n"
      "^ certified max-flow denominators (opt/flow_network, verified\n"
      "  in-process): sound on general DAGs and never looser than *.\n"
      "paper artifact: the conclusion's open question.  The machinery runs\n"
      "unchanged on general DAGs (every schedule validated), but the\n"
      "guarantees visibly degrade: LPF is no longer always optimal (part\n"
      "1 gaps) and MC's busy property can fail (violations > 0 is allowed\n"
      "here) — quantifying why 'shaping a DAG is significantly more\n"
      "challenging' (Section 1).\n");
  return 0;
}
