// E13 — resource augmentation context (Section 2 / the SPAA'16 frame).
//
// Prior work shows FIFO is SCALABLE: (1+eps)-speed O(1)-competitive.
// The paper's introduction explains why that analysis sidesteps the hard
// instances: augmentation "assumes away" perfectly packed schedules.  We
// measure the discrete analogue (machine augmentation, ceil((1+eps)m)
// processors vs OPT on m) of FIFO on the Section 4 family: the
// Theta(log m)-shaped column at eps = 0 collapses to a small constant for
// every eps > 0 — the phenomenon that made the un-augmented question this
// paper answers an open problem.
#include <cstdio>

#include "analysis/augmentation.h"
#include "analysis/sweep.h"
#include "common/csv.h"
#include "common/table.h"
#include "gen/fifo_adversary.h"
#include "sched/fifo.h"

using namespace otsched;

int main() {
  std::printf("== E13: FIFO under machine augmentation (extension) ==\n\n");

  const std::vector<int> ms = {16, 32, 64, 128};
  const std::vector<double> epsilons = {0.0, 0.1, 0.25, 0.5, 1.0};

  struct Row {
    int m;
    std::vector<double> ratios;
  };

  const auto rows = BatchRunner().Map<Row>(ms.size(), [&](std::size_t i) {
    const int m = ms[i];
    LowerBoundSimOptions options;
    options.m = m;
    options.num_jobs = 10 * m;
    const AdversarialInstance adv = MakeAdversarialInstance(options);

    Row row{m, {}};
    for (double eps : epsilons) {
      if (eps == 0.0) {
        // The co-simulated run IS FIFO at eps = 0.
        row.ratios.push_back(
            static_cast<double>(adv.fifo_run.max_flow) /
            static_cast<double>(adv.fifo_run.certified_opt_upper));
        continue;
      }
      FifoScheduler fifo;
      const AugmentedMeasurement r = MeasureAugmentedRatio(
          adv.instance, m, eps, fifo, adv.fifo_run.certified_opt_upper);
      row.ratios.push_back(r.measurement.ratio);
    }
    return row;
  });

  CsvWriter csv("results/e13_speed_augmentation.csv",
                {"m", "eps0", "eps0.1", "eps0.25", "eps0.5", "eps1"});
  TextTable table({"m", "eps=0", "eps=0.1", "eps=0.25", "eps=0.5",
                   "eps=1.0"});
  for (const Row& row : rows) {
    table.row(row.m, row.ratios[0], row.ratios[1], row.ratios[2],
              row.ratios[3], row.ratios[4]);
    csv.row(static_cast<long long>(row.m), row.ratios[0], row.ratios[1],
            row.ratios[2], row.ratios[3], row.ratios[4]);
  }
  table.print();
  std::printf(
      "\nReading: the eps = 0 column grows with m (Theorem 4.2); every\n"
      "augmented column is flat and small — augmentation dissolves the\n"
      "tightly packed hard family, which is exactly why the paper's\n"
      "un-augmented analysis required new ideas.\n"
      "(caveat: the augmented runs replay the instance MATERIALIZED\n"
      "against un-augmented FIFO; re-adapting the adversary to the\n"
      "augmented machine cannot restore the growth — SPAA'16 proves FIFO\n"
      "is O(1)-competitive under any constant augmentation.)\n"
      "(raw data: e13_speed_augmentation.csv)\n");
  return 0;
}
