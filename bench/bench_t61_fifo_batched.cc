// E8 — Theorem 6.1: FIFO is O(log max{m, OPT})-competitive on batched
// instances (arrivals at integer multiples of OPT; arbitrary DAGs
// allowed, non-clairvoyant scheduler).
//
// Three batched workloads per m:
//   * the Section 4 adversarial family (it IS batched with OPT <= m+1):
//     realizes the log lower bound, so the ratio TRACKS the envelope;
//   * saturated random out-forest batches (certified OPT): benign, ratio
//     near 1 — the envelope is a worst case, not a prediction;
//   * saturated batches of general series-parallel DAGs (map-reduce
//     pipelines padded to full load): Theorem 6.1 does not need trees.
#include <cmath>
#include <cstdio>

#include "analysis/ratio.h"
#include "analysis/sweep.h"
#include "common/csv.h"
#include "common/table.h"
#include "dag/builders.h"
#include "dag/metrics.h"
#include "gen/certified.h"
#include "gen/fifo_adversary.h"
#include "gen/recursive.h"
#include "sched/fifo.h"

using namespace otsched;

namespace {

// Batched general-DAG instance: map-reduce pipelines plus a parallel pad
// to work m*delta per batch, spaced delta apart.  OPT = delta exactly
// when each batch alone fits (we certify via the per-batch depth profile:
// pipelines are kept shallower than delta/2 so LPF-style packing exists;
// the conservative denominator below additionally guards the claim).
Instance MakeBatchedGeneralDag(int m, Time delta, int batches, Rng& rng,
                               Time* opt_lb_out) {
  Instance instance;
  Time worst_span = 1;
  for (int b = 0; b < batches; ++b) {
    const int rounds = 1 + static_cast<int>(rng.next_below(
                               static_cast<std::uint64_t>(delta / 4)));
    Dag pipeline = MakeMapReducePipeline(rounds, m / 2, rng);
    const std::int64_t pad = m * delta - pipeline.node_count();
    std::vector<Dag> parts;
    parts.push_back(std::move(pipeline));
    if (pad > 0) parts.push_back(MakeParallelBlob(static_cast<NodeId>(pad)));
    Dag batch = DisjointUnion(parts);
    worst_span = std::max<Time>(worst_span, ComputeMetrics(batch).span);
    instance.add_job(Job(std::move(batch), b * delta));
  }
  instance.set_name("batched-general-dag");
  // Work bound: each batch holds exactly m*delta work -> OPT >= delta.
  *opt_lb_out = delta;
  (void)worst_span;
  return instance;
}

}  // namespace

int main() {
  std::printf("== E8 / Theorem 6.1: FIFO on batched instances ==\n\n");

  const std::vector<int> ms = {8, 16, 32, 64, 128, 256};
  const Time delta = 12;

  struct Row {
    int m;
    double adversary_ratio;
    double forest_ratio;
    double general_ratio;
    double general_cert_ratio;
    double envelope;
  };

  const auto rows = BatchRunner().Map<Row>(ms.size(), [&](std::size_t i) {
    const int m = ms[i];
    Row row{m, 0.0, 0.0, 0.0, 0.0, 0.0};

    {  // Adversarial batched family (lbsim; OPT certified <= m+1).
      LowerBoundSimOptions options;
      options.m = m;
      options.num_jobs = std::min<std::int64_t>(16LL * m, 6000);
      options.record_sublayer_trace = false;
      const LowerBoundSimResult result = RunLowerBoundSim(options);
      row.adversary_ratio =
          static_cast<double>(result.max_flow) /
          static_cast<double>(result.certified_opt_upper);
    }
    for (int seed = 0; seed < 4; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 9176 + m);
      {  // Saturated out-forest batches.
        CertifiedInstance cert =
            MakeSpacedSaturatedInstance(m, delta, 8, rng);
        FifoScheduler fifo;
        const RatioMeasurement r =
            MeasureRatio(cert.instance, m, fifo, cert.opt);
        row.forest_ratio = std::max(row.forest_ratio, r.ratio);
      }
      {  // Saturated general-DAG batches: heuristic LB denominator vs
         // the certified max-flow bound (sound on arbitrary DAGs —
         // ratio_vs_certificate is a true upper bound on FIFO's ratio).
        Time opt_lb = 0;
        Instance instance = MakeBatchedGeneralDag(m, delta, 8, rng, &opt_lb);
        FifoScheduler fifo;
        RatioMeasurement r = MeasureRatio(instance, m, fifo);
        AttachCertificate(r, instance);
        row.general_ratio = std::max(row.general_ratio, r.ratio);
        row.general_cert_ratio =
            std::max(row.general_cert_ratio, r.ratio_vs_certificate);
      }
    }
    // OPT of the adversarial family is m+1 >= m, so the envelope is
    // log2(max(m, OPT)) ~ log2(m+1).
    row.envelope = std::log2(static_cast<double>(
        std::max<Time>(m, std::max<Time>(delta, m + 1))));
    return row;
  });

  CsvWriter csv("results/t61_fifo_batched.csv",
                {"m", "adversary_ratio", "forest_ratio", "general_ratio",
                 "ratio_vs_certificate", "log2_envelope"});
  TextTable table({"m", "adversary", "sat-forest", "general-DAG",
                   "vs certificate", "log2(max(m,OPT))", "adv/log"});
  for (const Row& row : rows) {
    table.row(row.m, row.adversary_ratio, row.forest_ratio,
              row.general_ratio, row.general_cert_ratio, row.envelope,
              row.adversary_ratio / row.envelope);
    csv.row(static_cast<long long>(row.m), row.adversary_ratio,
            row.forest_ratio, row.general_ratio, row.general_cert_ratio,
            row.envelope);
  }
  table.print();
  std::printf(
      "\npaper artifact: Theorem 6.1 — FIFO's batched ratio is\n"
      "O(log max(m, OPT)): the adversarial column grows logarithmically\n"
      "(last column roughly constant < 1), benign batched loads sit near\n"
      "1, and the bound needs no tree assumption (general-DAG column).\n"
      "The 'vs certificate' column divides by the verified max-flow bound\n"
      "(opt/flow_network) instead of the heuristic lower bounds; it can\n"
      "only be tighter (smaller or equal), and it is sound on DAGs.\n"
      "(raw data: t61_fifo_batched.csv)\n");
  return 0;
}
