// E5 — Lemma 5.5: the Most-Children replayer never wastes a granted
// processor until the job is finished.
//
// For each (family, p) cell we replay LPF[p] tails (head marked executed,
// exactly as Algorithm A uses MC) under three budget regimes — full,
// alternating, and adversarial random — and count busy violations (steps
// that scheduled fewer subjobs than the budget while work remained).  The
// lemma says every count is zero.
#include <cstdio>

#include "analysis/sweep.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/most_children.h"
#include "gen/random_trees.h"
#include "opt/single_batch.h"

using namespace otsched;

int main() {
  std::printf("== E5 / Lemma 5.5: MC busy property under budget streams ==\n");
  const int kSeeds = 30;
  std::printf("%d seeds x 3 budget regimes per cell; alpha = 4.\n\n", kSeeds);

  const std::vector<int> ps = {1, 2, 4, 8, 16};
  const std::vector<TreeFamily> families = {
      TreeFamily::kBushy, TreeFamily::kMixed, TreeFamily::kSpiny,
      TreeFamily::kBranchy};

  struct Cell {
    std::int64_t violations = 0;
    std::int64_t steps = 0;
    std::int64_t replays = 0;
  };
  struct Config {
    TreeFamily family;
    int p;
  };
  std::vector<Config> configs;
  for (TreeFamily family : families) {
    for (int p : ps) configs.push_back({family, p});
  }

  const auto cells = BatchRunner().Map<Cell>(configs.size(), [&](std::size_t i) {
    const Config& config = configs[i];
    Cell cell;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 52361 + i);
      const NodeId size =
          static_cast<NodeId>(config.p * 40 + rng.next_below(300));
      const Dag tree = MakeTree(config.family, size, rng);
      const JobSchedule lpf = BuildLpfSchedule(tree, config.p);
      const Time head = SingleBatchOpt(tree, config.p * 4);

      for (int regime = 0; regime < 3; ++regime) {
        MostChildrenReplayer mc(tree, lpf);
        mc.mark_prefix_executed(head);
        Rng budget_rng(static_cast<std::uint64_t>(seed) * 97 + regime);
        while (!mc.done()) {
          int budget = config.p;
          if (regime == 1) budget = (mc.now() % 2 == 0) ? config.p : 1;
          if (regime == 2) {
            budget = static_cast<int>(
                budget_rng.next_in_range(0, config.p));
          }
          mc.step(budget);
          ++cell.steps;
        }
        cell.violations += mc.busy_violations();
        ++cell.replays;
      }
    }
    return cell;
  });

  TextTable table({"family", "p=m/alpha", "replays", "MC steps",
                   "busy violations"});
  std::int64_t total_violations = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Cell& cell = cells[i];
    total_violations += cell.violations;
    table.row(ToString(configs[i].family), configs[i].p, cell.replays,
              cell.steps, cell.violations);
  }
  table.print();
  std::printf(
      "\npaper artifact: Lemma 5.5 — every MC step either uses the whole\n"
      "granted budget or finishes the job.  Total violations: %lld "
      "(expected 0).\n",
      static_cast<long long>(total_violations));
  return total_violations == 0 ? 0 : 1;
}
