// E7 — Theorem 5.7: the general Algorithm A (release rounding +
// guess-and-double, Section 5.4) is O(1)-competitive on arbitrary
// out-forest instances.
//
// Two workloads per m:
//   * certified spaced saturated streams (exact OPT denominator);
//   * Poisson arrivals of mixed random out-trees (lower-bound
//     denominator, conservative).
// Reported ratios must be flat in m.  Restart counts and the final guess
// show the doubling machinery at work.
#include <cstdio>

#include "analysis/ratio.h"
#include "analysis/sweep.h"
#include "common/csv.h"
#include "common/table.h"
#include "core/alg_a_full.h"
#include "gen/arrivals.h"
#include "gen/certified.h"
#include "gen/random_trees.h"

using namespace otsched;

int main() {
  std::printf("== E7 / Theorem 5.7: general Algorithm A ==\n");
  std::printf("alpha = 4, beta = 32 (paper: 258; smaller beta tightens the\n"
              "doubling envelope without touching the algorithm).\n\n");

  const std::vector<int> ms = {8, 16, 32, 64, 128};

  struct Row {
    int m;
    double certified_ratio;
    int certified_restarts;
    double poisson_ratio;
    int poisson_restarts;
    Time final_guess;
  };

  const auto rows = BatchRunner().Map<Row>(ms.size(), [&](std::size_t i) {
    const int m = ms[i];
    Row row{m, 0.0, 0, 0.0, 0, 0};
    for (int seed = 0; seed < 4; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 257 + m);
      {
        CertifiedInstance cert = MakeSpacedSaturatedInstance(m, 8, 8, rng);
        AlgAScheduler::Options options;
        options.beta = 32;
        AlgAScheduler scheduler(options);
        const RatioMeasurement r =
            MeasureRatio(cert.instance, m, scheduler, cert.opt);
        row.certified_ratio = std::max(row.certified_ratio, r.ratio);
        row.certified_restarts =
            std::max(row.certified_restarts, scheduler.restarts());
        row.final_guess = std::max(row.final_guess, scheduler.guess());
      }
      {
        Instance instance = MakePoissonArrivals(
            20, 1.0 / 6.0,
            [m](std::int64_t k, Rng& r) {
              return MakeTree(static_cast<TreeFamily>(k % 4),
                              static_cast<NodeId>(2 * m +
                                                  r.next_below(4u * m)),
                              r);
            },
            rng);
        AlgAScheduler::Options options;
        options.beta = 32;
        AlgAScheduler scheduler(options);
        const RatioMeasurement r = MeasureRatio(instance, m, scheduler);
        row.poisson_ratio = std::max(row.poisson_ratio, r.ratio);
        row.poisson_restarts =
            std::max(row.poisson_restarts, scheduler.restarts());
      }
    }
    return row;
  });

  CsvWriter csv("results/t57_alg_a_general.csv",
                {"m", "certified_ratio", "poisson_ratio"});
  TextTable table({"m", "certified ratio", "restarts", "poisson ratio*",
                   "restarts", "final guess"});
  for (const Row& row : rows) {
    table.row(row.m, row.certified_ratio, row.certified_restarts,
              row.poisson_ratio, row.poisson_restarts, row.final_guess);
    csv.row(static_cast<long long>(row.m), row.certified_ratio,
            row.poisson_ratio);
  }
  table.print();
  std::printf(
      "\n* poisson column divides by a LOWER BOUND on OPT, so it overstates\n"
      "the true ratio.  paper artifact: Theorem 5.7 — O(1)-competitive on\n"
      "arbitrary out-forest instances; both columns are flat in m and far\n"
      "below the proven 1548.  (raw data: t57_alg_a_general.csv)\n");
  return 0;
}
