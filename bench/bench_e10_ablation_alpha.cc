// E10 — ablation: Algorithm A's processor-split parameter alpha.
//
// Section 5 fixes alpha = 4 for the analysis (and beta = 258).  The
// algorithm is well-defined for any alpha >= 2 dividing m; this ablation
// measures how the split changes the achieved maximum flow on the two
// certified semi-batched families.  The tradeoff the analysis formalizes:
// larger alpha shrinks the per-job head/tail width (slower single-job
// progress, LPF[m/alpha] is alpha-competitive) but leaves more of the
// machine (m - 3m/alpha in the proof of Theorem 5.6) for the FIFO/MC
// backlog phase.
#include <cstdio>

#include "analysis/ratio.h"
#include "analysis/sweep.h"
#include "common/csv.h"
#include "common/table.h"
#include "core/alg_a.h"
#include "gen/certified.h"

using namespace otsched;

int main() {
  std::printf("== E10: ablation of Algorithm A's alpha (m = 64) ==\n\n");

  const int m = 64;
  const Time delta = 8;
  const std::vector<int> alphas = {2, 4, 8, 16};
  const int kSeeds = 5;

  struct Row {
    int alpha;
    double pipelined_ratio;
    double spaced_ratio;
  };

  const auto rows = BatchRunner().Map<Row>(alphas.size(), [&](std::size_t i) {
    const int alpha = alphas[i];
    Row row{alpha, 0.0, 0.0};
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 3571 + alpha);
      {
        CertifiedInstance cert =
            MakePipelinedSemiBatchedInstance(m, delta, 10, rng);
        AlgASemiBatchedScheduler::Options options;
        options.alpha = alpha;
        options.known_opt = cert.opt;
        AlgASemiBatchedScheduler scheduler(options);
        const RatioMeasurement r =
            MeasureRatio(cert.instance, m, scheduler, cert.opt);
        row.pipelined_ratio = std::max(row.pipelined_ratio, r.ratio);
      }
      {
        CertifiedInstance cert =
            MakeSpacedSaturatedInstance(m, delta, 10, rng);
        AlgASemiBatchedScheduler::Options options;
        options.alpha = alpha;
        options.known_opt = 2 * cert.opt;
        AlgASemiBatchedScheduler scheduler(options);
        const RatioMeasurement r =
            MeasureRatio(cert.instance, m, scheduler, cert.opt);
        row.spaced_ratio = std::max(row.spaced_ratio, r.ratio);
      }
    }
    return row;
  });

  CsvWriter csv("results/e10_ablation_alpha.csv",
                {"alpha", "pipelined_ratio", "spaced_ratio"});
  TextTable table({"alpha", "m/alpha", "pipelined ratio", "spaced ratio"});
  for (const Row& row : rows) {
    table.row(row.alpha, m / row.alpha, row.pipelined_ratio,
              row.spaced_ratio);
    csv.row(static_cast<long long>(row.alpha), row.pipelined_ratio,
            row.spaced_ratio);
  }
  table.print();
  std::printf(
      "\npaper artifact: the Section 5 constants.  alpha = 2 leaves no\n"
      "dedicated backlog capacity (the Theorem 5.6 proof needs\n"
      "m - 3m/alpha > 0, i.e. alpha > 3); very large alpha starves each\n"
      "job's own width.  The analysis's alpha = 4 sits at the knee.\n"
      "(raw data: e10_ablation_alpha.csv)\n");
  return 0;
}
