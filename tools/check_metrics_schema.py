#!/usr/bin/env python3
"""Validates otsched metrics / manifest JSON against tools/metrics_schema.json.

Hand-rolled validator (no third-party jsonschema dependency): it reads the
required-key lists and manifest constraints from the schema file, then
enforces the structural invariants the schema prose documents:

  * histograms: len(counts) == len(le) + 1, sum(counts) == count,
    le strictly increasing
  * series: len(slots) == len(values), slots strictly increasing
  * gauges: min <= mean <= max when count > 0
  * job faults: job_faults/checkpoint_policy appear together and imply
    flow-only record; without them work.wasted_slots and faults.rollbacks
    must be 0 (no rollback can fire with the model off)

A file containing a "counters" key is validated as a full metrics
document; anything else is validated as a standalone run manifest.
Live /metrics captures from `otsched serve` (manifest instance
"serve:<addr>") additionally get the serve-profile checks: flow-only
record, no faults, serve.jobs_finished <= serve.jobs_submitted, and
manifest jobs tracking the submission counter (docs/SERVING.md).

Usage: check_metrics_schema.py <file.json> [more.json ...]
Exits nonzero on the first invalid file.
"""

import json
import os
import re
import sys

SCHEMA_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "metrics_schema.json")


class Invalid(Exception):
    pass


def require(cond, message):
    if not cond:
        raise Invalid(message)


def check_manifest(manifest, schema):
    spec = schema["properties"]["manifest"]
    require(isinstance(manifest, dict), "manifest is not an object")
    for key in spec["required"]:
        require(key in manifest, f"manifest is missing '{key}'")
    require(re.fullmatch(spec["properties"]["instance_hash"]["pattern"],
                         manifest["instance_hash"]),
            f"bad instance_hash {manifest['instance_hash']!r}")
    require(manifest["clairvoyance"] in
            spec["properties"]["clairvoyance"]["enum"],
            f"bad clairvoyance {manifest['clairvoyance']!r}")
    require(manifest["record"] in spec["properties"]["record"]["enum"],
            f"bad record mode {manifest['record']!r}")
    require(re.fullmatch(spec["properties"]["faults"]["pattern"],
                         manifest["faults"]),
            f"bad faults spec {manifest['faults']!r}")
    # Job-fault keys are conditional: both present for an active model,
    # both absent otherwise (never "none" — WriteManifest elides them).
    if "job_faults" in manifest or "checkpoint_policy" in manifest:
        require("job_faults" in manifest and "checkpoint_policy" in manifest,
                "job_faults and checkpoint_policy must appear together")
        require(re.fullmatch(spec["properties"]["job_faults"]["pattern"],
                             manifest["job_faults"]),
                f"bad job_faults spec {manifest['job_faults']!r}")
        require(re.fullmatch(
                    spec["properties"]["checkpoint_policy"]["pattern"],
                    manifest["checkpoint_policy"]),
                f"bad checkpoint_policy {manifest['checkpoint_policy']!r}")
        require(manifest["record"] == "flow-only",
                "job_faults requires record=flow-only")
    for key in ("jobs", "total_work", "m", "seed", "max_horizon"):
        require(isinstance(manifest[key], int) and not
                isinstance(manifest[key], bool),
                f"manifest '{key}' is not an integer")
    require(manifest["m"] >= 1, "manifest m must be >= 1")
    # Optional certified-bound extras (--certify): validated when present.
    if "certified_bound" in manifest:
        bound = manifest["certified_bound"]
        require(isinstance(bound, int) and not isinstance(bound, bool)
                and bound >= 1,
                f"bad certified_bound {bound!r} (want integer >= 1)")
        require("certificate_method" in manifest,
                "certified_bound without certificate_method")
    if "certificate_method" in manifest:
        require(manifest["certificate_method"] in
                spec["properties"]["certificate_method"]["enum"],
                f"bad certificate_method "
                f"{manifest['certificate_method']!r}")
    if "ratio_vs_certificate" in manifest:
        require("certified_bound" in manifest,
                "ratio_vs_certificate without certified_bound")
        require(re.fullmatch(
                    spec["properties"]["ratio_vs_certificate"]["pattern"],
                    manifest["ratio_vs_certificate"]),
                f"bad ratio_vs_certificate "
                f"{manifest['ratio_vs_certificate']!r}")


def check_serve_profile(doc):
    """Extra invariants for live /metrics captures from `otsched serve`
    (manifest instance 'serve:<addr>'; see docs/SERVING.md)."""
    manifest, counters = doc["manifest"], doc["counters"]
    require(manifest["record"] == "flow-only",
            "serve capture must be record=flow-only")
    require(manifest["faults"] == "none",
            "serve capture must be faults=none")
    # The serve counters update together on driver activity; a capture
    # taken before the first submission legitimately lacks them.
    if "serve.jobs_submitted" in counters:
        require("serve.jobs_finished" in counters,
                "serve.jobs_submitted without serve.jobs_finished")
        submitted = counters["serve.jobs_submitted"]
        finished = counters["serve.jobs_finished"]
        require(finished <= submitted,
                f"serve.jobs_finished {finished} > "
                f"serve.jobs_submitted {submitted}")
        require(manifest["jobs"] == submitted,
                f"manifest jobs {manifest['jobs']} != "
                f"serve.jobs_submitted {submitted}")
    # Durability counters are lazy: a healthy run without --journal has
    # NONE of them, keeping its /metrics bit-identical to older daemons.
    # When they do appear they obey the journal's framing arithmetic.
    if "serve.journal_records" in counters or "serve.journal_bytes" in counters:
        require("serve.journal_records" in counters
                and "serve.journal_bytes" in counters,
                "serve.journal_records and serve.journal_bytes must "
                "appear together")
        require(counters["serve.journal_bytes"]
                >= counters["serve.journal_records"],
                "serve.journal_bytes smaller than one byte per record")
    for name in ("serve.journal_snapshots", "serve.journal_rotations"):
        if name in counters:
            require("serve.journal_records" in counters,
                    f"{name} without serve.journal_records")
    # Each recovered job's tag can be claimed by a resubmission at most
    # once, so claims never exceed the replayed-job count.
    if "serve.recovered_replies" in counters:
        require(counters["serve.recovered_replies"]
                <= counters.get("serve.recovered_jobs", 0),
                "serve.recovered_replies exceeds serve.recovered_jobs")


def check_metrics(doc, schema):
    for key in schema["required"]:
        require(key in doc, f"document is missing '{key}'")
    require(doc["schema_version"] == 1,
            f"unsupported schema_version {doc['schema_version']}")
    check_manifest(doc["manifest"], schema)
    if doc["manifest"]["instance"].startswith("serve:"):
        check_serve_profile(doc)
    # Wasted work only exists under an active job-fault model: with the
    # model off (key elided from the manifest) no rollback may ever fire.
    # This covers the serve profile too, which never arms job faults.
    if "job_faults" not in doc["manifest"]:
        for name in ("work.wasted_slots", "faults.rollbacks"):
            value = doc["counters"].get(name, 0)
            require(value == 0,
                    f"counter '{name}' is {value} but the manifest has "
                    f"no job_faults model")

    for name, value in doc["counters"].items():
        require(isinstance(value, int) and not isinstance(value, bool),
                f"counter '{name}' is not an integer")

    for name, gauge in doc["gauges"].items():
        for field in ("last", "min", "max", "mean", "count"):
            require(field in gauge, f"gauge '{name}' is missing '{field}'")
        if gauge["count"] > 0:
            require(gauge["min"] <= gauge["mean"] <= gauge["max"],
                    f"gauge '{name}': mean outside [min, max]")

    for name, hist in doc["histograms"].items():
        for field in ("le", "counts", "count", "sum"):
            require(field in hist, f"histogram '{name}' is missing '{field}'")
        le, counts = hist["le"], hist["counts"]
        require(len(counts) == len(le) + 1,
                f"histogram '{name}': {len(counts)} counts for "
                f"{len(le)} bounds (want bounds + 1)")
        require(all(a < b for a, b in zip(le, le[1:])),
                f"histogram '{name}': bounds not strictly increasing")
        require(sum(counts) == hist["count"],
                f"histogram '{name}': sum(counts) {sum(counts)} != "
                f"count {hist['count']}")

    for name, series in doc["series"].items():
        slots, values = series["slots"], series["values"]
        require(len(slots) == len(values),
                f"series '{name}': {len(slots)} slots vs "
                f"{len(values)} values")
        require(all(a < b for a, b in zip(slots, slots[1:])),
                f"series '{name}': slots not strictly increasing")


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(SCHEMA_PATH, encoding="utf-8") as f:
        schema = json.load(f)
    for path in argv[1:]:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        try:
            if "counters" in doc:
                check_metrics(doc, schema)
            else:
                check_manifest(doc, schema)
        except Invalid as err:
            print(f"{path}: INVALID: {err}", file=sys.stderr)
            return 1
        print(f"{path}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
