# Drives the CLI through a full generate -> describe -> bounds -> run
# pipeline and fails on any nonzero exit.
function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE code
                  WORKING_DIRECTORY ${WORKDIR})
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGV}")
  endif()
endfunction()

# Expects the command to exit 2 and print `pattern` on stderr.
function(expect_diagnostic pattern)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE code OUTPUT_QUIET
                  ERROR_VARIABLE err WORKING_DIRECTORY ${WORKDIR})
  if(NOT code EQUAL 2)
    message(FATAL_ERROR "expected exit 2 for: ${ARGN} (got ${code})")
  endif()
  if(NOT err MATCHES "${pattern}")
    message(FATAL_ERROR
            "expected '${pattern}' on stderr for: ${ARGN}\ngot: ${err}")
  endif()
endfunction()

set(INST ${WORKDIR}/cli_smoke.inst)
run_step(${CLI} gen saturated 8 4 3 11 ${INST})
run_step(${CLI} describe ${INST} 8)
run_step(${CLI} bounds ${INST} 8)
run_step(${CLI} run ${INST} 8 fifo/first-ready --render 10)
run_step(${CLI} run ${INST} 8 alg-a/general --svg ${WORKDIR}/cli_smoke.svg
         --trace ${WORKDIR}/cli_smoke.trace
         --timeseries ${WORKDIR}/cli_smoke.csv)
run_step(${CLI} adversary 4 6 ${WORKDIR}/cli_adv.inst)
run_step(${CLI} run ${WORKDIR}/cli_adv.inst 4 work-stealing)
foreach(artifact cli_smoke.svg cli_smoke.trace cli_smoke.csv)
  if(NOT EXISTS ${WORKDIR}/${artifact})
    message(FATAL_ERROR "missing artifact ${artifact}")
  endif()
endforeach()

# Registry surface: list-policies must print every canonical name, and
# `run --policy <name>` accepts canonical names ONLY — the legacy PR-3
# aliases exit 2 with a rename pointer (checked below).
execute_process(COMMAND ${CLI} list-policies RESULT_VARIABLE code
                OUTPUT_VARIABLE listing WORKING_DIRECTORY ${WORKDIR})
if(NOT code EQUAL 0)
  message(FATAL_ERROR "list-policies failed (${code})")
endif()
foreach(name fifo/first-ready fifo/random list-greedy round-robin-equi
        work-stealing remaining-work/smallest global-lpf alg-a/general
        alg-a/semi-batched)
  if(NOT listing MATCHES "${name}")
    message(FATAL_ERROR "list-policies is missing '${name}'")
  endif()
endforeach()
run_step(${CLI} run ${INST} 8 --policy fifo/first-ready --render 4)
run_step(${CLI} run ${INST} 8 --policy remaining-work/smallest)
execute_process(COMMAND ${CLI} run ${INST} 8 --policy no-such-policy
                RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET
                WORKING_DIRECTORY ${WORKDIR})
if(code EQUAL 0)
  message(FATAL_ERROR "unknown --policy name must fail, got exit 0")
endif()

# Subcommand surface: list-policies is the only spelling; the removed
# legacy subcommands exit 2 and point at the rename on stderr.
foreach(legacy policies --list-policies)
  expect_diagnostic("renamed to .otsched list-policies." ${CLI} ${legacy})
endforeach()

# Removed legacy policy spellings: exit 2 with the specific rename, for
# every driver that takes a policy (run, sweep, trace).
expect_diagnostic("unknown policy 'fifo'. renamed to 'fifo/first-ready'"
                  ${CLI} run ${INST} 8 fifo)
expect_diagnostic("renamed to 'remaining-work/smallest'"
                  ${CLI} run ${INST} 8 --policy srpt)
expect_diagnostic("renamed to 'alg-a/general'" ${CLI} run ${INST} 8 alg-a)
expect_diagnostic("renamed to 'fifo/random'"
                  ${CLI} sweep ${INST} fifo-random --m 2 --seeds 1)
expect_diagnostic("renamed to 'round-robin-equi'" ${CLI} trace ${INST} 8 equi)
expect_diagnostic("renamed to 'fifo/lpf-height'"
                  ${CLI} run ${INST} 8 fifo-lpf)
expect_diagnostic("renamed to 'alg-a/semi-batched'"
                  ${CLI} run ${INST} 8 alg-a-semibatched)

# Unknown subcommands fail loudly with a nonzero exit.
execute_process(COMMAND ${CLI} frobnicate RESULT_VARIABLE code
                OUTPUT_QUIET ERROR_VARIABLE unknown_err
                WORKING_DIRECTORY ${WORKDIR})
if(code EQUAL 0)
  message(FATAL_ERROR "unknown subcommand must fail, got exit 0")
endif()
if(NOT unknown_err MATCHES "unknown command 'frobnicate'")
  message(FATAL_ERROR "unknown subcommand must name itself on stderr")
endif()

# Observability artifacts: run --metrics/--manifest/--metrics-csv, the
# trace subcommand (byte-identical to run --trace), and sweep aggregates.
run_step(${CLI} run ${INST} 8 fifo/first-ready --metrics ${WORKDIR}/cli_metrics.json
         --metrics-csv ${WORKDIR}/cli_metrics.csv
         --manifest ${WORKDIR}/cli_manifest.json
         --trace ${WORKDIR}/cli_run.trace)
run_step(${CLI} trace ${INST} 8 fifo/first-ready --out ${WORKDIR}/cli_sub.trace)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/cli_run.trace ${WORKDIR}/cli_sub.trace
                RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "`trace` output differs from `run --trace`")
endif()
run_step(${CLI} sweep ${INST} fifo/first-ready --m 2,8 --seeds 2 --workers 1
         --metrics ${WORKDIR}/cli_sweep.json --csv ${WORKDIR}/cli_sweep.csv)
foreach(artifact cli_metrics.json cli_metrics.csv cli_manifest.json
        cli_sweep.json cli_sweep.csv)
  if(NOT EXISTS ${WORKDIR}/${artifact})
    message(FATAL_ERROR "missing artifact ${artifact}")
  endif()
endforeach()
file(READ ${WORKDIR}/cli_metrics.json metrics_json)
foreach(key schema_version manifest counters gauges histograms series
        engine.idle_processor_slots flow.slots instance_hash)
  if(NOT metrics_json MATCHES "${key}")
    message(FATAL_ERROR "metrics JSON is missing '${key}'")
  endif()
endforeach()

# Optional deep validation against the checked-in schema (skipped when no
# python3 is on PATH; CI always has one).
find_program(PYTHON3 python3)
if(PYTHON3 AND DEFINED SCHEMA_CHECK)
  run_step(${PYTHON3} ${SCHEMA_CHECK} ${WORKDIR}/cli_metrics.json
           ${WORKDIR}/cli_sweep.json ${WORKDIR}/cli_manifest.json)
endif()

# ---- malformed input: per-line diagnostics + exit 2, never an abort ----

file(WRITE ${WORKDIR}/cli_bad.inst
     "otsched-instance-v1\njob 0 3\n0 1\n0 7\nend\n")
expect_diagnostic("instance line 4.*outside the job's 3 nodes"
                  ${CLI} describe ${WORKDIR}/cli_bad.inst)
expect_diagnostic("instance line" ${CLI} bounds ${WORKDIR}/cli_bad.inst 4)
expect_diagnostic("instance line" ${CLI} run ${WORKDIR}/cli_bad.inst 4 fifo/first-ready)
expect_diagnostic("instance line" ${CLI} sweep ${WORKDIR}/cli_bad.inst fifo/first-ready)
expect_diagnostic("instance line" ${CLI} trace ${WORKDIR}/cli_bad.inst 4 fifo/first-ready)
file(WRITE ${WORKDIR}/cli_bad_magic.inst "not-an-instance\n")
expect_diagnostic("bad magic" ${CLI} describe ${WORKDIR}/cli_bad_magic.inst)
expect_diagnostic("cannot open" ${CLI} describe ${WORKDIR}/no_such.inst)

file(WRITE ${WORKDIR}/cli_bad_budget.csv "slot,capacity\n3,2\n2,1\n")
expect_diagnostic("budget csv line 3.*strictly after"
                  ${CLI} run ${INST} 8 fifo/first-ready
                  --faults-trace ${WORKDIR}/cli_bad_budget.csv)
expect_diagnostic("unknown fault model"
                  ${CLI} run ${INST} 8 fifo/first-ready --faults meteor-strike)
expect_diagnostic("want a number in .0, 0.9."
                  ${CLI} run ${INST} 8 fifo/first-ready --faults random-blip:1:0.95)

# ---- fault injection surface ----

run_step(${CLI} run ${INST} 8 fifo/first-ready --faults random-blip:7:0.3
         --metrics ${WORKDIR}/cli_faulted_metrics.json)
file(READ ${WORKDIR}/cli_faulted_metrics.json faulted_json)
foreach(key faults random-blip:7:0.3 faults.faulted_slots
        faults.capacity_shortfall)
  if(NOT faulted_json MATCHES "${key}")
    message(FATAL_ERROR "faulted metrics JSON is missing '${key}'")
  endif()
endforeach()

# Freeze a model into a CSV, inspect it, and replay it as a trace: the
# frozen trace must drive a run exactly like any other budget CSV.
run_step(${CLI} faults emit burst-outage:3:0.5 8 64
         ${WORKDIR}/cli_budget.csv)
run_step(${CLI} faults inspect ${WORKDIR}/cli_budget.csv 8)
run_step(${CLI} run ${INST} 8 fifo/first-ready --faults-trace ${WORKDIR}/cli_budget.csv)

# Window planners opt out of fluctuating capacity: a clean diagnostic,
# not an engine CHECK-abort.
expect_diagnostic("does not support fluctuating capacity"
                  ${CLI} run ${INST} 8 alg-a/general
                  --faults random-blip:1:0.3)

# ---- job-side faults & checkpointing surface ----

# The describe-style listing names every crash model and checkpoint
# policy.
execute_process(COMMAND ${CLI} list-job-faults RESULT_VARIABLE code
                OUTPUT_VARIABLE job_fault_listing)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "list-job-faults failed (${code})")
endif()
foreach(name random-crash periodic-crash adversarial-loss on-completion
        every-slots every-subjobs)
  if(NOT job_fault_listing MATCHES "${name}")
    message(FATAL_ERROR "list-job-faults is missing '${name}'")
  endif()
endforeach()

# A faulted run defaults to flow-only recording, reports the rollback
# line, and stamps the model into manifest and metrics.
run_step(${CLI} run ${INST} 8 fifo/first-ready
         --job-faults random-crash:7:0.1 --checkpoint-policy every-slots:4
         --metrics ${WORKDIR}/cli_job_faulted_metrics.json)
file(READ ${WORKDIR}/cli_job_faulted_metrics.json job_faulted_json)
foreach(key job_faults random-crash:7:0.1 checkpoint_policy every-slots:4
        faults.rollbacks faults.checkpoints work.wasted_slots
        work.committed_frontier)
  if(NOT job_faulted_json MATCHES "${key}")
    message(FATAL_ERROR "job-faulted metrics JSON is missing '${key}'")
  endif()
endforeach()

# A fault-free run must NOT carry the conditional manifest keys.
run_step(${CLI} run ${INST} 8 fifo/first-ready
         --metrics ${WORKDIR}/cli_healthy_metrics.json)
file(READ ${WORKDIR}/cli_healthy_metrics.json healthy_json)
if(healthy_json MATCHES "job_faults")
  message(FATAL_ERROR "healthy metrics JSON leaked a job_faults key")
endif()

# Per-token parse diagnostics, each exit 2.
expect_diagnostic("unknown job-fault model"
                  ${CLI} run ${INST} 8 fifo/first-ready --job-faults bogus)
expect_diagnostic("want a number in .0, 0.9."
                  ${CLI} run ${INST} 8 fifo/first-ready
                  --job-faults random-crash:1:0.95)
expect_diagnostic("malformed checkpoint interval"
                  ${CLI} run ${INST} 8 fifo/first-ready
                  --job-faults random-crash --checkpoint-policy every-slots:0)
expect_diagnostic("takes no interval"
                  ${CLI} run ${INST} 8 fifo/first-ready
                  --job-faults random-crash
                  --checkpoint-policy on-completion:3)

# Gating diagnostics: an orphaned checkpoint policy, the flow-only
# requirement, the schedule-walking renderers, and a policy whose
# internal queues cannot survive a rollback.
expect_diagnostic("needs an active job-fault model"
                  ${CLI} run ${INST} 8 fifo/first-ready
                  --checkpoint-policy every-slots:4)
expect_diagnostic("require --record flow"
                  ${CLI} run ${INST} 8 fifo/first-ready
                  --job-faults random-crash --record full)
expect_diagnostic("incompatible with --job-faults"
                  ${CLI} run ${INST} 8 fifo/first-ready
                  --job-faults random-crash --render 10)
expect_diagnostic("does not support job faults"
                  ${CLI} run ${INST} 8 work-stealing
                  --job-faults random-crash)
expect_diagnostic("does not support job faults"
                  ${CLI} sweep ${INST} work-stealing
                  --job-faults random-crash)

# ---- crash-tolerant sweep checkpointing ----

# The gate: a fresh sweep, a checkpointed sweep, and a crash-interrupted
# sweep resumed from a truncated manifest must print byte-identical
# tables.
execute_process(COMMAND ${CLI} sweep ${INST} fifo/first-ready --m 2,4 --seeds 2
                RESULT_VARIABLE code OUTPUT_VARIABLE sweep_fresh
                WORKING_DIRECTORY ${WORKDIR})
if(NOT code EQUAL 0)
  message(FATAL_ERROR "fresh sweep failed (${code})")
endif()
execute_process(COMMAND ${CLI} sweep ${INST} fifo/first-ready --m 2,4 --seeds 2
                --checkpoint ${WORKDIR}/cli_sweep.ckpt
                RESULT_VARIABLE code OUTPUT_VARIABLE sweep_ckpt
                WORKING_DIRECTORY ${WORKDIR})
if(NOT code EQUAL 0)
  message(FATAL_ERROR "checkpointed sweep failed (${code})")
endif()
if(NOT sweep_ckpt STREQUAL sweep_fresh)
  message(FATAL_ERROR "checkpointed sweep output differs from fresh sweep")
endif()
if(NOT EXISTS ${WORKDIR}/cli_sweep.ckpt)
  message(FATAL_ERROR "sweep --checkpoint wrote no manifest")
endif()

# Simulate a mid-run SIGKILL: keep the header and the first two completed
# cells, drop the rest, then --resume.  The resumed run reuses the two
# surviving cells, recomputes the other two, and must print the same
# table byte for byte.
file(STRINGS ${WORKDIR}/cli_sweep.ckpt ckpt_lines)
list(SUBLIST ckpt_lines 0 9 ckpt_head)
string(JOIN "\n" ckpt_truncated ${ckpt_head})
file(WRITE ${WORKDIR}/cli_sweep_cut.ckpt "${ckpt_truncated}\n")
execute_process(COMMAND ${CLI} sweep ${INST} fifo/first-ready --m 2,4 --seeds 2
                --checkpoint ${WORKDIR}/cli_sweep_cut.ckpt --resume
                RESULT_VARIABLE code OUTPUT_VARIABLE sweep_resumed
                WORKING_DIRECTORY ${WORKDIR})
if(NOT code EQUAL 0)
  message(FATAL_ERROR "resumed sweep failed (${code})")
endif()
if(NOT sweep_resumed STREQUAL sweep_fresh)
  message(FATAL_ERROR "resumed sweep output differs from fresh sweep")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/cli_sweep.ckpt ${WORKDIR}/cli_sweep_cut.ckpt
                RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "resumed checkpoint manifest differs from the "
                      "uninterrupted one")
endif()

# ---- certified lower bounds (--certify) ----

# `bounds --certify` on the checked-in GENERAL DAG example (not an
# out-forest): both certificates must verify and the manifest must carry
# the certified bound.
execute_process(COMMAND ${CLI} bounds ${EXAMPLES_DIR}/general_dag.inst 2
                --certify --manifest ${WORKDIR}/cli_cert_manifest.json
                RESULT_VARIABLE code OUTPUT_VARIABLE cert_out
                WORKING_DIRECTORY ${WORKDIR})
if(NOT code EQUAL 0)
  message(FATAL_ERROR "bounds --certify failed (${code})")
endif()
foreach(pattern "dual-fit certificate" "max-flow certificate"
        "verified" "best component")
  if(NOT cert_out MATCHES "${pattern}")
    message(FATAL_ERROR "bounds --certify output is missing '${pattern}'")
  endif()
endforeach()
if(cert_out MATCHES "VERIFY FAILED")
  message(FATAL_ERROR "bounds --certify reported a failed verification")
endif()
file(READ ${WORKDIR}/cli_cert_manifest.json cert_manifest)
foreach(key certified_bound certificate_method max-flow)
  if(NOT cert_manifest MATCHES "${key}")
    message(FATAL_ERROR "certificate manifest is missing '${key}'")
  endif()
endforeach()

# `run --certify`: the manifest and metrics gain the certified_bound /
# ratio_vs_certificate fields and still validate against the schema.
run_step(${CLI} run ${EXAMPLES_DIR}/general_dag.inst 2 list-greedy --certify
         --manifest ${WORKDIR}/cli_cert_run_manifest.json
         --metrics ${WORKDIR}/cli_cert_run_metrics.json)
file(READ ${WORKDIR}/cli_cert_run_manifest.json cert_run_manifest)
foreach(key certified_bound certificate_method ratio_vs_certificate)
  if(NOT cert_run_manifest MATCHES "${key}")
    message(FATAL_ERROR "run --certify manifest is missing '${key}'")
  endif()
endforeach()
if(PYTHON3 AND DEFINED SCHEMA_CHECK)
  run_step(${PYTHON3} ${SCHEMA_CHECK} ${WORKDIR}/cli_cert_manifest.json
           ${WORKDIR}/cli_cert_run_manifest.json
           ${WORKDIR}/cli_cert_run_metrics.json)
endif()

# Certified bounds under an explicit budget trace (frozen above).
run_step(${CLI} bounds ${INST} 8 --certify
         --faults-trace ${WORKDIR}/cli_budget.csv)
run_step(${CLI} run ${INST} 8 fifo/first-ready --certify
         --faults-trace ${WORKDIR}/cli_budget.csv)

# Stochastic faults have no explicit budget stream to certify against:
# a diagnostic, not an abort.
expect_diagnostic("needs explicit per-slot budgets"
                  ${CLI} run ${INST} 8 fifo/first-ready --certify
                  --faults random-blip:1:0.3)
# Non-positive machine counts get a diagnostic too.
expect_diagnostic("m >= 1" ${CLI} bounds ${INST} 0)

# ---- serve durability flags (docs/SERVING.md) ----

# --help documents the daemon without starting it.
execute_process(COMMAND ${CLI} serve --help RESULT_VARIABLE code
                OUTPUT_VARIABLE serve_help WORKING_DIRECTORY ${WORKDIR})
if(NOT code EQUAL 0)
  message(FATAL_ERROR "serve --help failed (${code})")
endif()
foreach(flag --journal --recover --journal-rotate --snapshot-every
        --max-line --max-conns --max-pending --idle-timeout-ms)
  if(NOT serve_help MATCHES "${flag}")
    message(FATAL_ERROR "serve --help is missing '${flag}'")
  endif()
endforeach()

# Malformed durability flags: per-token diagnostics, each exit 2,
# before any socket is bound.
expect_diagnostic("serve: --journal needs a path" ${CLI} serve --journal)
expect_diagnostic("serve: --recover needs a path" ${CLI} serve --recover)
expect_diagnostic("needs a nonnegative integer, got 'nope'"
                  ${CLI} serve --snapshot-every nope)
expect_diagnostic("needs a nonnegative integer"
                  ${CLI} serve --max-pending -3)
expect_diagnostic("--max-line needs at least 1" ${CLI} serve --max-line 0)
expect_diagnostic("cannot open journal"
                  ${CLI} serve --recover ${WORKDIR}/no_such.journal)
expect_diagnostic("must name the same file as --recover"
                  ${CLI} serve --journal ${WORKDIR}/a.ndjson
                  --recover ${WORKDIR}/b.ndjson)
# A stateful policy cannot warm-start from snapshots: rotation refused.
expect_diagnostic("snapshot" ${CLI} serve --policy fifo/random
                  --journal ${WORKDIR}/cli_serve.ndjson --journal-rotate)

# A checkpoint from a DIFFERENT grid must be rejected, not spliced in.
expect_diagnostic("different sweep"
                  ${CLI} sweep ${INST} fifo/first-ready --m 2,8 --seeds 2
                  --checkpoint ${WORKDIR}/cli_sweep.ckpt --resume)
# Flag hygiene: checkpoint cells are flow-only and un-instrumented.
expect_diagnostic("incompatible"
                  ${CLI} sweep ${INST} fifo/first-ready
                  --checkpoint ${WORKDIR}/x.ckpt --metrics ${WORKDIR}/x.json)
expect_diagnostic("requires --checkpoint"
                  ${CLI} sweep ${INST} fifo/first-ready --resume)
