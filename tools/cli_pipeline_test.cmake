# Drives the CLI through a full generate -> describe -> bounds -> run
# pipeline and fails on any nonzero exit.
function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE code
                  WORKING_DIRECTORY ${WORKDIR})
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGV}")
  endif()
endfunction()

set(INST ${WORKDIR}/cli_smoke.inst)
run_step(${CLI} gen saturated 8 4 3 11 ${INST})
run_step(${CLI} describe ${INST} 8)
run_step(${CLI} bounds ${INST} 8)
run_step(${CLI} run ${INST} 8 fifo --render 10)
run_step(${CLI} run ${INST} 8 alg-a --svg ${WORKDIR}/cli_smoke.svg
         --trace ${WORKDIR}/cli_smoke.trace
         --timeseries ${WORKDIR}/cli_smoke.csv)
run_step(${CLI} adversary 4 6 ${WORKDIR}/cli_adv.inst)
run_step(${CLI} run ${WORKDIR}/cli_adv.inst 4 work-stealing)
foreach(artifact cli_smoke.svg cli_smoke.trace cli_smoke.csv)
  if(NOT EXISTS ${WORKDIR}/${artifact})
    message(FATAL_ERROR "missing artifact ${artifact}")
  endif()
endforeach()

# Registry surface: --list-policies must print every canonical name, and
# `run --policy <name>` must accept canonical names and legacy aliases.
execute_process(COMMAND ${CLI} --list-policies RESULT_VARIABLE code
                OUTPUT_VARIABLE listing WORKING_DIRECTORY ${WORKDIR})
if(NOT code EQUAL 0)
  message(FATAL_ERROR "--list-policies failed (${code})")
endif()
foreach(name fifo/first-ready fifo/random list-greedy round-robin-equi
        work-stealing remaining-work/smallest global-lpf alg-a/general
        alg-a/semi-batched)
  if(NOT listing MATCHES "${name}")
    message(FATAL_ERROR "--list-policies is missing '${name}'")
  endif()
endforeach()
run_step(${CLI} run ${INST} 8 --policy fifo/first-ready --render 4)
run_step(${CLI} run ${INST} 8 --policy srpt)
execute_process(COMMAND ${CLI} run ${INST} 8 --policy no-such-policy
                RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET
                WORKING_DIRECTORY ${WORKDIR})
if(code EQUAL 0)
  message(FATAL_ERROR "unknown --policy name must fail, got exit 0")
endif()
