# Drives the CLI through a full generate -> describe -> bounds -> run
# pipeline and fails on any nonzero exit.
function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE code
                  WORKING_DIRECTORY ${WORKDIR})
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGV}")
  endif()
endfunction()

set(INST ${WORKDIR}/cli_smoke.inst)
run_step(${CLI} gen saturated 8 4 3 11 ${INST})
run_step(${CLI} describe ${INST} 8)
run_step(${CLI} bounds ${INST} 8)
run_step(${CLI} run ${INST} 8 fifo --render 10)
run_step(${CLI} run ${INST} 8 alg-a --svg ${WORKDIR}/cli_smoke.svg
         --trace ${WORKDIR}/cli_smoke.trace
         --timeseries ${WORKDIR}/cli_smoke.csv)
run_step(${CLI} adversary 4 6 ${WORKDIR}/cli_adv.inst)
run_step(${CLI} run ${WORKDIR}/cli_adv.inst 4 work-stealing)
foreach(artifact cli_smoke.svg cli_smoke.trace cli_smoke.csv)
  if(NOT EXISTS ${WORKDIR}/${artifact})
    message(FATAL_ERROR "missing artifact ${artifact}")
  endif()
endforeach()

# Registry surface: --list-policies must print every canonical name, and
# `run --policy <name>` must accept canonical names and legacy aliases.
execute_process(COMMAND ${CLI} --list-policies RESULT_VARIABLE code
                OUTPUT_VARIABLE listing WORKING_DIRECTORY ${WORKDIR})
if(NOT code EQUAL 0)
  message(FATAL_ERROR "--list-policies failed (${code})")
endif()
foreach(name fifo/first-ready fifo/random list-greedy round-robin-equi
        work-stealing remaining-work/smallest global-lpf alg-a/general
        alg-a/semi-batched)
  if(NOT listing MATCHES "${name}")
    message(FATAL_ERROR "--list-policies is missing '${name}'")
  endif()
endforeach()
run_step(${CLI} run ${INST} 8 --policy fifo/first-ready --render 4)
run_step(${CLI} run ${INST} 8 --policy srpt)
execute_process(COMMAND ${CLI} run ${INST} 8 --policy no-such-policy
                RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET
                WORKING_DIRECTORY ${WORKDIR})
if(code EQUAL 0)
  message(FATAL_ERROR "unknown --policy name must fail, got exit 0")
endif()

# Subcommand surface: list-policies is the canonical spelling; the legacy
# spellings keep working but point at it on stderr.
execute_process(COMMAND ${CLI} list-policies RESULT_VARIABLE code
                OUTPUT_VARIABLE canonical WORKING_DIRECTORY ${WORKDIR})
if(NOT code EQUAL 0)
  message(FATAL_ERROR "list-policies failed (${code})")
endif()
foreach(legacy policies --list-policies)
  execute_process(COMMAND ${CLI} ${legacy} RESULT_VARIABLE code
                  OUTPUT_VARIABLE legacy_out ERROR_VARIABLE legacy_err
                  WORKING_DIRECTORY ${WORKDIR})
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "legacy '${legacy}' failed (${code})")
  endif()
  if(NOT legacy_out STREQUAL canonical)
    message(FATAL_ERROR "legacy '${legacy}' output differs from list-policies")
  endif()
  if(NOT legacy_err MATCHES "deprecated")
    message(FATAL_ERROR "legacy '${legacy}' must print a deprecation note")
  endif()
endforeach()

# Unknown subcommands fail loudly with a nonzero exit.
execute_process(COMMAND ${CLI} frobnicate RESULT_VARIABLE code
                OUTPUT_QUIET ERROR_VARIABLE unknown_err
                WORKING_DIRECTORY ${WORKDIR})
if(code EQUAL 0)
  message(FATAL_ERROR "unknown subcommand must fail, got exit 0")
endif()
if(NOT unknown_err MATCHES "unknown command 'frobnicate'")
  message(FATAL_ERROR "unknown subcommand must name itself on stderr")
endif()

# Observability artifacts: run --metrics/--manifest/--metrics-csv, the
# trace subcommand (byte-identical to run --trace), and sweep aggregates.
run_step(${CLI} run ${INST} 8 fifo --metrics ${WORKDIR}/cli_metrics.json
         --metrics-csv ${WORKDIR}/cli_metrics.csv
         --manifest ${WORKDIR}/cli_manifest.json
         --trace ${WORKDIR}/cli_run.trace)
run_step(${CLI} trace ${INST} 8 fifo --out ${WORKDIR}/cli_sub.trace)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/cli_run.trace ${WORKDIR}/cli_sub.trace
                RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "`trace` output differs from `run --trace`")
endif()
run_step(${CLI} sweep ${INST} fifo --m 2,8 --seeds 2 --workers 1
         --metrics ${WORKDIR}/cli_sweep.json --csv ${WORKDIR}/cli_sweep.csv)
foreach(artifact cli_metrics.json cli_metrics.csv cli_manifest.json
        cli_sweep.json cli_sweep.csv)
  if(NOT EXISTS ${WORKDIR}/${artifact})
    message(FATAL_ERROR "missing artifact ${artifact}")
  endif()
endforeach()
file(READ ${WORKDIR}/cli_metrics.json metrics_json)
foreach(key schema_version manifest counters gauges histograms series
        engine.idle_processor_slots flow.slots instance_hash)
  if(NOT metrics_json MATCHES "${key}")
    message(FATAL_ERROR "metrics JSON is missing '${key}'")
  endif()
endforeach()

# Optional deep validation against the checked-in schema (skipped when no
# python3 is on PATH; CI always has one).
find_program(PYTHON3 python3)
if(PYTHON3 AND DEFINED SCHEMA_CHECK)
  run_step(${PYTHON3} ${SCHEMA_CHECK} ${WORKDIR}/cli_metrics.json
           ${WORKDIR}/cli_sweep.json ${WORKDIR}/cli_manifest.json)
endif()
