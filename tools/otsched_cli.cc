// otsched — command-line driver for the library, organised as subcommands:
//
//   otsched gen <family> <args...> <out.inst>     generate an instance
//   otsched adversary <m> <jobs> <out.inst>       materialize the §4 family
//   otsched bounds <in.inst> <m>                  print OPT lower bounds
//       [--certify] [--faults-trace F] [--manifest F]
//   otsched describe <in.inst> [m]                print instance statistics
//   otsched run <in.inst> <m> [--policy] <policy> run a policy, report flows
//       [--render N] [--seed S] [--opt V] [--svg F] [--trace F]
//       [--timeseries F] [--metrics F] [--metrics-csv F] [--manifest F]
//       [--record full|flow] [--faults SPEC] [--faults-trace F]
//       [--job-faults SPEC] [--checkpoint-policy P] [--certify]
//   otsched sweep <in.inst> <policy> [--m LIST] [--seeds N] [--workers N]
//       [--opt V] [--metrics F] [--csv F] [--record full|flow]
//       [--faults SPEC] [--faults-trace F] [--job-faults SPEC]
//       [--checkpoint-policy P] [--checkpoint F] [--resume]
//   otsched trace <in.inst> <m> <policy> [--seed S] [--opt V] [--out F]
//       [--record full|flow]                      stream the event trace
//   otsched faults emit <spec> <m> <horizon> [out.csv]   freeze a model
//   otsched faults inspect <trace.csv> <m>        summarize a budget trace
//   otsched serve [--listen A] [--m M] [--policy P]      NDJSON-over-socket
//       [--journal F] [--recover F] [...]         scheduler daemon (SERVING.md)
//   otsched list-policies                         list the policy registry
//
// Policies are constructed through the shared registry (sched/registry.h)
// under their canonical names (fifo/first-ready).  The PR-3 legacy
// spellings (`fifo`, `srpt`, ..., and the `policies`/`--list-policies`
// subcommands) were removed: they exit 2 with a pointer to the rename.
//
// Families for `gen`:
//   quicksort <jobs> <n> <rate-denom> <seed>
//   trees <jobs> <size> <period> <seed>           (mixed random out-trees)
//   saturated <m> <delta> <batches> <seed>        (certified OPT = delta)
//   pipelined <m> <delta> <batches> <seed>        (certified OPT = 2*delta)
//
// Exit status is nonzero on usage errors; malformed input files (instance
// text, budget CSV, fault specs) print a per-line diagnostic to stderr and
// exit 2 instead of aborting.  All numeric output goes to stdout so it can
// be piped.  --metrics emits the observability JSON documented in
// docs/OBSERVABILITY.md (schema: tools/metrics_schema.json).  Fault specs
// (`--faults`) use the `model[:seed[:rate]]` shorthand from
// docs/ROBUSTNESS.md; `sweep --checkpoint` + `--resume` give crash-tolerant
// sweeps with bit-identical output.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/instance_stats.h"
#include "analysis/ratio.h"
#include "analysis/sweep.h"
#include "analysis/timeseries.h"
#include "common/table.h"
#include "gen/arrivals.h"
#include "gen/certified.h"
#include "gen/fifo_adversary.h"
#include "gen/random_trees.h"
#include "gen/recursive.h"
#include "job/serialize.h"
#include "opt/dual_fitting.h"
#include "opt/flow_network.h"
#include "sched/registry.h"
#include "sim/batch_runner.h"
#include "sim/faults.h"
#include "sim/observers.h"
#include "sim/renderer.h"
#include "sim/svg.h"
#include "serve/server.h"
#include "sim/trace.h"

using namespace otsched;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  otsched gen quicksort <jobs> <n> <rate-denom> <seed> <out>\n"
      "  otsched gen trees <jobs> <size> <period> <seed> <out>\n"
      "  otsched gen saturated <m> <delta> <batches> <seed> <out>\n"
      "  otsched gen pipelined <m> <delta> <batches> <seed> <out>\n"
      "  otsched adversary <m> <jobs> <out>\n"
      "  otsched bounds <in> <m> [--certify] [--faults-trace F]\n"
      "              [--manifest F]\n"
      "  otsched describe <in> [m]\n"
      "  otsched run <in> <m> [--policy] <policy> [--render N] [--seed S]\n"
      "              [--opt V] [--svg F] [--trace F] [--timeseries F]\n"
      "              [--metrics F] [--metrics-csv F] [--manifest F]\n"
      "              [--record full|flow]  (default: full)\n"
      "              [--faults MODEL[:SEED[:RATE]]] [--faults-trace F]\n"
      "              [--job-faults MODEL[:SEED[:PARAM]]]\n"
      "              [--checkpoint-policy on-completion|every-slots:K|"
      "every-subjobs:K]\n"
      "              [--certify]\n"
      "  otsched sweep <in> <policy> [--m LIST] [--seeds N] [--workers N]\n"
      "              [--opt V] [--metrics F] [--csv F]\n"
      "              [--record full|flow]  (default: flow)\n"
      "              [--faults MODEL[:SEED[:RATE]]] [--faults-trace F]\n"
      "              [--job-faults MODEL[:SEED[:PARAM]]]\n"
      "              [--checkpoint-policy P]\n"
      "              [--checkpoint F] [--resume]\n"
      "  otsched trace <in> <m> <policy> [--seed S] [--opt V] [--out F]\n"
      "              [--record full|flow]  (default: full)\n"
      "  otsched faults emit <model[:seed[:rate]]> <m> <horizon> [out.csv]\n"
      "  otsched faults inspect <trace.csv> <m>\n"
      "  otsched serve [--listen H:P|unix:PATH] [--m M] [--policy P]\n"
      "              [--seed S] [--chunk N] [--journal F] [--recover F]\n"
      "              [--journal-rotate] [--snapshot-every N] [--max-line B]\n"
      "              [--max-conns N] [--max-pending N] [--idle-timeout-ms T]\n"
      "              streaming scheduler daemon (serve --help for details)\n"
      "  otsched list-policies\n"
      "  otsched list-job-faults\n");
  return 2;
}

/// Parses a `--record` value (`full` or `flow`); both the two-token
/// `--record flow` and the one-token `--record=flow` spellings reach
/// here.  Complains and returns false on anything else.
bool ParseRecordMode(const char* value, RecordMode* mode) {
  if (std::strcmp(value, "full") == 0) {
    *mode = RecordMode::kFull;
    return true;
  }
  if (std::strcmp(value, "flow") == 0 ||
      std::strcmp(value, "flow-only") == 0) {
    *mode = RecordMode::kFlowOnly;
    return true;
  }
  std::fprintf(stderr, "unknown record mode '%s' (want full|flow)\n", value);
  return false;
}

/// Recoverable instance loading: malformed or unreadable files print the
/// parser's per-line diagnostic to stderr and return nullopt (callers
/// exit 2), instead of the old CHECK-abort on a typo in a hand-edited
/// file.
std::optional<Instance> LoadInstanceOrComplain(const char* path) {
  std::string error;
  std::optional<Instance> instance = TryLoadInstance(path, &error);
  if (!instance.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
  }
  return instance;
}

/// Shared fault-flag state for `run` and `sweep`.  The BudgetTrace is
/// owned here so a kTrace spec's borrowed pointer outlives the run.
struct FaultArgs {
  FaultSpec spec;
  std::optional<BudgetTrace> trace_storage;
};

/// Parses `--faults MODEL[:SEED[:RATE]]`.  Diagnoses and returns false on
/// malformed specs (exit 2 at the call sites).
bool ParseFaultsFlagOrComplain(const char* value, FaultArgs* faults) {
  std::string error;
  std::optional<FaultSpec> spec = ParseFaultSpec(value, &error);
  if (!spec.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return false;
  }
  faults->spec = *spec;
  return true;
}

/// Parses `--faults-trace F`: loads a budget CSV and makes it the active
/// fault model (overrides any `--faults` model choice).
bool LoadFaultsTraceOrComplain(const char* path, FaultArgs* faults) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  std::optional<BudgetTrace> trace =
      BudgetTrace::try_from_csv(buffer.str(), &error);
  if (!trace.has_value()) {
    std::fprintf(stderr, "%s: %s\n", path, error.c_str());
    return false;
  }
  faults->trace_storage = *std::move(trace);
  faults->spec.model = FaultModel::kTrace;
  faults->spec.trace = &*faults->trace_storage;
  return true;
}

/// Faulted runs need a policy that consumes SchedulerView::capacity();
/// the window planners (alg-a family) replan against fixed m and opt out.
/// Diagnose here instead of tripping the engine's CHECK.
bool CheckFaultSupportOrComplain(const Scheduler& policy,
                                 const FaultArgs& faults) {
  if (faults.spec.active() && !policy.supports_fluctuating_capacity()) {
    std::fprintf(stderr,
                 "policy '%s' does not support fluctuating capacity "
                 "(--faults); pick a list policy\n",
                 policy.name().c_str());
    return false;
  }
  return true;
}

/// Shared job-fault flag state for `run` and `sweep` (sim/job_faults.h).
/// `policy_set` distinguishes "--checkpoint-policy never given" from the
/// default, so a stray --checkpoint-policy without --job-faults diagnoses.
struct JobFaultArgs {
  JobFaultSpec spec;
  bool policy_set = false;
};

/// Parses `--job-faults MODEL[:SEED[:PARAM]]`, preserving any checkpoint
/// policy already parsed (the two flags may come in either order).
/// Diagnoses and returns false on malformed specs (exit 2 at call sites).
bool ParseJobFaultsFlagOrComplain(const char* value, JobFaultArgs* args) {
  std::string error;
  std::optional<JobFaultSpec> spec = ParseJobFaultSpec(value, &error);
  if (!spec.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return false;
  }
  spec->checkpoint = args->spec.checkpoint;
  spec->checkpoint_every = args->spec.checkpoint_every;
  args->spec = *spec;
  return true;
}

/// Parses `--checkpoint-policy on-completion|every-slots:K|every-subjobs:K`
/// into the shared spec.  Diagnoses and returns false on malformed input.
bool ParseCheckpointPolicyOrComplain(const char* value, JobFaultArgs* args) {
  std::string error;
  if (!ParseCheckpointPolicyInto(value, &args->spec, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return false;
  }
  args->policy_set = true;
  return true;
}

/// Job-faulted runs are flow-only (re-executed subjobs have no Schedule
/// representation) and need a policy that re-reads ready sets every slot.
/// Diagnose here instead of tripping the engine's CHECKs.
bool CheckJobFaultSupportOrComplain(const Scheduler& policy,
                                    const JobFaultArgs& args,
                                    RecordMode record) {
  if (!args.spec.active()) {
    if (args.policy_set) {
      std::fprintf(stderr,
                   "--checkpoint-policy needs an active job-fault model "
                   "(--job-faults)\n");
      return false;
    }
    return true;
  }
  if (record != RecordMode::kFlowOnly) {
    std::fprintf(stderr,
                 "job faults (--job-faults) require --record flow: "
                 "re-executed subjobs cannot be materialized in a "
                 "schedule\n");
    return false;
  }
  if (!policy.supports_fluctuating_capacity() ||
      !policy.supports_job_rollback()) {
    std::fprintf(stderr,
                 "policy '%s' does not support job faults (--job-faults); "
                 "pick a list policy that re-reads ready sets every slot\n",
                 policy.name().c_str());
    return false;
  }
  return true;
}

/// Prints the job-fault crash models and checkpoint policies with their
/// spec shorthands, mirroring `list-policies`.
void ListJobFaults() {
  std::printf("crash models (--job-faults MODEL[:SEED[:PARAM]]):\n");
  std::printf("%-36s %s\n", "none",
              "no job ever crashes (the default)");
  std::printf("%-36s %s\n", "random-crash[:seed[:rate]]",
              "iid per-(slot, job) crash with probability rate in [0, 0.9]");
  std::printf("%-36s %s\n", "periodic-crash[:seed[:period]]",
              "deterministic crash every `period` slots of job age (>= 2)");
  std::printf("%-36s %s\n", "adversarial-loss[:seed[:threshold]]",
              "crash the moment volatile work reaches `threshold` (>= 1)");
  std::printf("\ncheckpoint policies (--checkpoint-policy P):\n");
  std::printf("%-36s %s\n", "on-completion",
              "only the implicit commit when a job finishes (the default)");
  std::printf("%-36s %s\n", "every-slots:K",
              "commit every job at slots divisible by K");
  std::printf("%-36s %s\n", "every-subjobs:K",
              "commit a job once its volatile work reaches K subjobs");
  std::printf(
      "\ncrashed jobs lose every subjob executed since their last commit\n"
      "and redo that work; see docs/ROBUSTNESS.md for the model contract.\n");
}

bool WriteFileOrComplain(const std::string& path, const std::string& content,
                         const char* what) {
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "cannot open %s for %s\n", path.c_str(), what);
    return false;
  }
  out << content;
  return true;
}

/// Prints the registry: canonical name, one-line summary.
void ListPolicies() {
  for (const PolicySpec& spec : AllPolicies()) {
    std::printf("%-36s %s\n", spec.name.c_str(), spec.description.c_str());
  }
}

/// The unknown-policy diagnostic, shared by run/sweep/trace.  Legacy
/// PR-3 spellings get the rename pointer; anything else the registry
/// hint.  Always exits 2 at the call site.
void ComplainUnknownPolicy(const std::string& name) {
  if (const char* renamed = LegacyPolicyAlias(name)) {
    std::fprintf(stderr,
                 "unknown policy '%s': renamed to '%s'\n",
                 name.c_str(), renamed);
    return;
  }
  std::fprintf(stderr,
               "unknown policy '%s' (try `otsched list-policies`)\n",
               name.c_str());
}

int CmdGen(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string family = argv[0];

  auto save = [&](Instance instance, const char* path) {
    SaveInstance(instance, path);
    std::printf("wrote %s: %d jobs, %lld subjobs, releases %lld..%lld\n",
                path, instance.job_count(),
                static_cast<long long>(instance.total_work()),
                static_cast<long long>(instance.min_release()),
                static_cast<long long>(instance.max_release()));
    return 0;
  };

  if (family == "quicksort" && argc == 6) {
    const std::int64_t jobs = std::atoll(argv[1]);
    const std::int64_t n = std::atoll(argv[2]);
    const double rate = 1.0 / std::strtod(argv[3], nullptr);
    Rng rng(std::strtoull(argv[4], nullptr, 10));
    Instance instance = MakePoissonArrivals(
        jobs, rate,
        [n](std::int64_t, Rng& r) {
          QuicksortOptions q;
          q.n = n;
          q.grain = std::max<std::int64_t>(1, n / 32);
          q.cutoff = q.grain;
          return MakeQuicksortTree(q, r);
        },
        rng);
    return save(std::move(instance), argv[5]);
  }
  if (family == "trees" && argc == 6) {
    const std::int64_t jobs = std::atoll(argv[1]);
    const NodeId size = static_cast<NodeId>(std::atoi(argv[2]));
    const Time period = std::atoll(argv[3]);
    Rng rng(std::strtoull(argv[4], nullptr, 10));
    Instance instance = MakePeriodicArrivals(
        jobs, period,
        [size](std::int64_t i, Rng& r) {
          return MakeTree(static_cast<TreeFamily>(i % 4), size, r);
        },
        rng);
    return save(std::move(instance), argv[5]);
  }
  if ((family == "saturated" || family == "pipelined") && argc == 6) {
    const int m = std::atoi(argv[1]);
    const Time delta = std::atoll(argv[2]);
    const int batches = std::atoi(argv[3]);
    Rng rng(std::strtoull(argv[4], nullptr, 10));
    CertifiedInstance cert =
        family == "saturated"
            ? MakeSpacedSaturatedInstance(m, delta, batches, rng)
            : MakePipelinedSemiBatchedInstance(m, delta, batches, rng);
    std::printf("certified OPT on m=%d: %lld\n", m,
                static_cast<long long>(cert.opt));
    return save(std::move(cert.instance), argv[5]);
  }
  return Usage();
}

int CmdAdversary(int argc, char** argv) {
  if (argc != 3) return Usage();
  LowerBoundSimOptions options;
  options.m = std::atoi(argv[0]);
  options.num_jobs = std::atoll(argv[1]);
  const AdversarialInstance adv = MakeAdversarialInstance(options);
  SaveInstance(adv.instance, argv[2]);
  std::printf(
      "wrote %s: m=%d, %lld jobs, certified OPT <= %lld\n"
      "co-simulated arbitrary-FIFO max flow: %lld (ratio %.2f)\n",
      argv[2], options.m, static_cast<long long>(options.num_jobs),
      static_cast<long long>(adv.fifo_run.certified_opt_upper),
      static_cast<long long>(adv.fifo_run.max_flow),
      static_cast<double>(adv.fifo_run.max_flow) /
          static_cast<double>(adv.fifo_run.certified_opt_upper));
  return 0;
}

int CmdDescribe(int argc, char** argv) {
  if (argc < 1) return Usage();
  const std::optional<Instance> instance = LoadInstanceOrComplain(argv[0]);
  if (!instance.has_value()) return 2;
  const int m = argc >= 2 ? std::atoi(argv[1]) : 1;
  std::printf("%s\n", ToString(ComputeInstanceStats(*instance, m)).c_str());
  return 0;
}

int CmdBounds(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::optional<Instance> loaded = LoadInstanceOrComplain(argv[0]);
  if (!loaded.has_value()) return 2;
  const Instance& instance = *loaded;
  const int m = std::atoi(argv[1]);
  if (m < 1) {
    std::fprintf(stderr, "bounds need a machine: m >= 1, got %d\n", m);
    return 2;
  }
  bool certify = false;
  std::string manifest_path;
  FaultArgs faults;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--certify") == 0) {
      certify = true;
      continue;
    }
    if (i + 1 >= argc) return Usage();
    if (std::strcmp(argv[i], "--faults-trace") == 0) {
      if (!LoadFaultsTraceOrComplain(argv[i + 1], &faults)) return 2;
    } else if (std::strcmp(argv[i], "--manifest") == 0) {
      manifest_path = argv[i + 1];
    } else {
      return Usage();
    }
    ++i;
  }
  // The heuristic components model a healthy machine; under an explicit
  // budget trace only the certified bounds are meaningful.
  const BudgetTrace* budget =
      faults.trace_storage.has_value() ? &*faults.trace_storage : nullptr;
  const LowerBounds bounds = ComputeLowerBounds(instance, m);
  TextTable table({"bound", "value"});
  table.row("span (max job span)", bounds.span_bound);
  table.row("work (max ceil(W_i/m))", bounds.work_bound);
  table.row("depth profile (Lemma 5.1)", bounds.depth_profile_bound);
  table.row("interval (released work)", bounds.interval_bound);
  table.row("depth x interval (combined)", bounds.depth_interval_bound);
  table.row("best", bounds.best());
  table.print("lower bounds on OPT max-flow, m = " + std::to_string(m) +
              (budget != nullptr ? " (healthy-machine heuristics):"
                                 : ":"));
  std::printf("best component  : %s\n", ToString(bounds.best_component()));

  if (!certify && manifest_path.empty() && budget == nullptr) return 0;

  // Certified bounds: each certificate re-verifies in-process before
  // anything is printed or written (a broken certificate aborts inside
  // the constructors; the explicit verify here surfaces the verdict).
  const Certificate dual = DualFitCertificate(instance, m, budget);
  const Certificate flow = MaxFlowCertificate(instance, m, budget);
  std::string why;
  const bool dual_ok = dual.verify(instance, budget, &why);
  const bool flow_ok = flow.verify(instance, budget, &why);
  std::printf("certified bounds%s:\n",
              budget != nullptr ? " (under budget trace)" : "");
  std::printf("  dual-fit certificate : %lld (%s)\n",
              static_cast<long long>(dual.value),
              dual_ok ? "verified" : "VERIFY FAILED");
  std::printf("  max-flow certificate : %lld (%s)\n",
              static_cast<long long>(flow.value),
              flow_ok ? "verified" : "VERIFY FAILED");
  if (!dual_ok || !flow_ok) return 1;

  if (!manifest_path.empty()) {
    SimOptions options;
    options.faults = faults.spec;
    RunManifest manifest =
        MakeRunManifest(instance, m, "<bounds>", /*seed=*/0, options);
    manifest.certified_bound = flow.value;
    manifest.certificate_method = flow.method;
    if (!WriteFileOrComplain(manifest_path, manifest.to_json(),
                             "manifest")) {
      return 1;
    }
    std::printf("manifest written to %s\n", manifest_path.c_str());
  }
  return 0;
}

int CmdRun(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::optional<Instance> loaded = LoadInstanceOrComplain(argv[0]);
  if (!loaded.has_value()) return 2;
  const Instance& instance = *loaded;
  const int m = std::atoi(argv[1]);
  // The policy is positional, or spelled explicitly as `--policy <name>`.
  int first_flag = 3;
  std::string policy_name;
  if (std::strcmp(argv[2], "--policy") == 0) {
    if (argc < 4) return Usage();
    policy_name = argv[3];
    first_flag = 4;
  } else {
    policy_name = argv[2];
  }
  Time render = 0;
  std::uint64_t seed = 1;
  Time known_opt = 0;
  std::string svg_path;
  std::string trace_path;
  std::string timeseries_path;
  std::string metrics_path;
  std::string metrics_csv_path;
  std::string manifest_path;
  RecordMode record = RecordMode::kFull;
  bool record_set = false;
  FaultArgs faults;
  JobFaultArgs job_faults;
  bool certify = false;
  for (int i = first_flag; i < argc; ++i) {
    if (std::strncmp(argv[i], "--record=", 9) == 0) {
      if (!ParseRecordMode(argv[i] + 9, &record)) return 2;
      record_set = true;
      continue;
    }
    if (std::strcmp(argv[i], "--certify") == 0) {
      certify = true;
      continue;
    }
    if (i + 1 >= argc) break;
    if (std::strcmp(argv[i], "--record") == 0) {
      if (!ParseRecordMode(argv[i + 1], &record)) return 2;
      record_set = true;
    }
    if (std::strcmp(argv[i], "--faults") == 0) {
      if (!ParseFaultsFlagOrComplain(argv[i + 1], &faults)) return 2;
    }
    if (std::strcmp(argv[i], "--faults-trace") == 0) {
      if (!LoadFaultsTraceOrComplain(argv[i + 1], &faults)) return 2;
    }
    if (std::strcmp(argv[i], "--job-faults") == 0) {
      if (!ParseJobFaultsFlagOrComplain(argv[i + 1], &job_faults)) return 2;
    }
    if (std::strcmp(argv[i], "--checkpoint-policy") == 0) {
      if (!ParseCheckpointPolicyOrComplain(argv[i + 1], &job_faults)) {
        return 2;
      }
    }
    if (std::strcmp(argv[i], "--policy") == 0) policy_name = argv[i + 1];
    if (std::strcmp(argv[i], "--render") == 0) render = std::atoll(argv[i + 1]);
    if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(argv[i + 1], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--opt") == 0) known_opt = std::atoll(argv[i + 1]);
    if (std::strcmp(argv[i], "--svg") == 0) svg_path = argv[i + 1];
    if (std::strcmp(argv[i], "--trace") == 0) trace_path = argv[i + 1];
    if (std::strcmp(argv[i], "--timeseries") == 0) {
      timeseries_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--metrics") == 0) metrics_path = argv[i + 1];
    if (std::strcmp(argv[i], "--metrics-csv") == 0) {
      metrics_csv_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--manifest") == 0) manifest_path = argv[i + 1];
    ++i;
  }

  std::unique_ptr<Scheduler> policy = MakePolicy(policy_name, seed, known_opt);
  if (!policy) {
    ComplainUnknownPolicy(policy_name);
    return 2;
  }
  if (!CheckFaultSupportOrComplain(*policy, faults)) return 2;
  // Job faults force flow-only recording; an unset --record follows along,
  // an explicit --record full diagnoses.
  if (job_faults.spec.active() && !record_set) record = RecordMode::kFlowOnly;
  if (!CheckJobFaultSupportOrComplain(*policy, job_faults, record)) return 2;
  if (job_faults.spec.active() &&
      (render > 0 || !svg_path.empty() || !timeseries_path.empty())) {
    std::fprintf(stderr,
                 "--render/--svg/--timeseries walk a materialized schedule "
                 "and are incompatible with --job-faults\n");
    return 2;
  }
  if (certify && faults.spec.active() &&
      faults.spec.model != FaultModel::kTrace) {
    // The certified bound charges explicit per-slot capacities; freeze the
    // stochastic model first so the certificate covers the same budgets.
    std::fprintf(stderr,
                 "--certify needs explicit per-slot budgets under faults; "
                 "freeze the model with `otsched faults emit` and pass "
                 "--faults-trace\n");
    return 2;
  }

  // Observers ride along on the measured run itself: the trace streams
  // online and the metrics figures are the run's own SimStats/FlowSummary.
  MetricsRegistry registry;
  MetricsObserver metrics_observer(registry);
  EventTrace streamed;
  StreamingTraceObserver trace_observer(streamed);
  ObserverList observers;
  const bool want_metrics = !metrics_path.empty() ||
                            !metrics_csv_path.empty();
  if (want_metrics) observers.add(&metrics_observer);
  if (!trace_path.empty()) observers.add(&trace_observer);

  RunContext context;
  context.options.record = record;
  context.options.faults = faults.spec;
  context.options.job_faults = job_faults.spec;
  context.observer = observers.empty() ? nullptr : &observers;
  RatioMeasurement r = MeasureRatio(instance, m, *policy, known_opt, context);
  if (certify) {
    // Verified denominator for the same budget stream the run consumed
    // (nullptr = healthy machine).  Aborts if the certificate fails its
    // own verification or the measured flow beats the certified bound.
    AttachCertificate(r, instance,
                      faults.trace_storage.has_value()
                          ? &*faults.trace_storage
                          : nullptr);
  }

  std::printf("policy          : %s\n", r.scheduler.c_str());
  std::printf("max flow        : %lld\n", static_cast<long long>(r.max_flow));
  std::printf("vs %s: %.3f (denominator %lld)\n",
              r.denominator_exact ? "certified OPT " : "lower bound   ",
              r.ratio, static_cast<long long>(r.opt_denominator));
  if (r.certified_bound > 0) {
    std::printf("vs certificate  : %.3f (certified bound %lld, %s, %s)\n",
                r.ratio_vs_certificate,
                static_cast<long long>(r.certified_bound),
                r.certificate_method.c_str(),
                r.certificate_verified ? "verified" : "VERIFY FAILED");
  }
  std::printf("mean / p99 flow : %.1f / %lld\n", r.flow_stats.mean,
              static_cast<long long>(r.flow_stats.p99));
  std::printf("horizon         : %lld slots, idle processor-slots %lld\n",
              static_cast<long long>(r.sim_stats.horizon),
              static_cast<long long>(r.sim_stats.idle_processor_slots));
  if (job_faults.spec.active()) {
    std::printf("job faults      : %lld rollbacks, %lld wasted subjob-slots, "
                "%lld interval checkpoints\n",
                static_cast<long long>(r.sim_stats.job_rollbacks),
                static_cast<long long>(r.sim_stats.wasted_subjob_slots),
                static_cast<long long>(r.sim_stats.checkpoints));
  }

  RunManifest manifest =
      MakeRunManifest(instance, m, r.scheduler, seed, context.options);
  if (r.certified_bound > 0) {
    manifest.certified_bound = r.certified_bound;
    manifest.certificate_method = r.certificate_method;
    char formatted[32];
    std::snprintf(formatted, sizeof(formatted), "%.4f",
                  r.ratio_vs_certificate);
    manifest.ratio_vs_certificate = formatted;
  }
  if (want_metrics) WriteManifest(registry, manifest);
  if (!metrics_path.empty() &&
      !WriteFileOrComplain(metrics_path, registry.to_json(), "metrics")) {
    return 1;
  }
  if (!metrics_path.empty()) {
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  if (!metrics_csv_path.empty()) {
    if (!WriteFileOrComplain(metrics_csv_path, registry.series_csv(),
                             "metrics CSV")) {
      return 1;
    }
    std::printf("metric series written to %s\n", metrics_csv_path.c_str());
  }
  if (!manifest_path.empty()) {
    if (!WriteFileOrComplain(manifest_path, manifest.to_json(), "manifest")) {
      return 1;
    }
    std::printf("manifest written to %s\n", manifest_path.c_str());
  }
  if (!trace_path.empty()) {
    std::string trace_error;
    if (!streamed.to_file(trace_path, &trace_error)) {
      std::fprintf(stderr, "%s\n", trace_error.c_str());
      return 1;
    }
    std::printf("event trace written to %s\n", trace_path.c_str());
  }

  if (render > 0 || !svg_path.empty() || !timeseries_path.empty()) {
    // Re-run to obtain the schedule (MeasureRatio does not retain it).
    // Always full-record here regardless of --record: the ASCII renderer,
    // the SVG renderer, and the time-series derivation all walk the
    // materialized slot-by-slot schedule.
    std::unique_ptr<Scheduler> again = MakePolicy(policy_name, seed, known_opt);
    SimOptions render_options;
    render_options.faults = faults.spec;
    const SimResult sim = Simulate(instance, m, *again, render_options);
    if (render > 0) {
      RenderOptions options;
      options.to_slot = render;
      std::printf("\nfirst %lld slots:\n%s", static_cast<long long>(render),
                  RenderSchedule(sim.full_schedule(), instance,
                                 options).c_str());
    }
    if (!svg_path.empty()) {
      SvgOptions options;
      options.title = policy_name + " on " + argv[0];
      SaveScheduleSvg(sim.full_schedule(), instance, svg_path, options);
      std::printf("\nSVG written to %s\n", svg_path.c_str());
    }
    if (!timeseries_path.empty()) {
      std::ofstream out(timeseries_path);
      out << ComputeTimeSeries(sim.full_schedule(), instance).to_csv();
      std::printf("time series written to %s\n", timeseries_path.c_str());
    }
  }
  return 0;
}

int CmdSweep(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::optional<Instance> loaded = LoadInstanceOrComplain(argv[0]);
  if (!loaded.has_value()) return 2;
  const Instance& instance = *loaded;
  const std::string policy_name = argv[1];

  std::vector<int> machines = {2, 4};
  int seeds = 3;
  std::size_t workers = 0;
  Time known_opt = 0;
  std::string metrics_path;
  std::string csv_path;
  std::string checkpoint_path;
  bool resume = false;
  FaultArgs faults;
  JobFaultArgs job_faults;
  // Sweeps only read flows and stats, so cells default to flow-only
  // recording; `--record full` restores schedule materialization.
  RecordMode record = RecordMode::kFlowOnly;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--record=", 9) == 0) {
      if (!ParseRecordMode(argv[i] + 9, &record)) return 2;
      continue;
    }
    if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
      continue;
    }
    if (i + 1 >= argc) break;
    if (std::strcmp(argv[i], "--record") == 0) {
      if (!ParseRecordMode(argv[i + 1], &record)) return 2;
    }
    if (std::strcmp(argv[i], "--faults") == 0) {
      if (!ParseFaultsFlagOrComplain(argv[i + 1], &faults)) return 2;
    }
    if (std::strcmp(argv[i], "--faults-trace") == 0) {
      if (!LoadFaultsTraceOrComplain(argv[i + 1], &faults)) return 2;
    }
    if (std::strcmp(argv[i], "--job-faults") == 0) {
      if (!ParseJobFaultsFlagOrComplain(argv[i + 1], &job_faults)) return 2;
    }
    if (std::strcmp(argv[i], "--checkpoint-policy") == 0) {
      if (!ParseCheckpointPolicyOrComplain(argv[i + 1], &job_faults)) {
        return 2;
      }
    }
    if (std::strcmp(argv[i], "--checkpoint") == 0) {
      checkpoint_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--m") == 0) {
      machines.clear();
      std::string list = argv[i + 1];
      for (char& c : list) {
        if (c == ',') c = ' ';
      }
      std::istringstream in(list);
      int m = 0;
      while (in >> m) machines.push_back(m);
    }
    if (std::strcmp(argv[i], "--seeds") == 0) seeds = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--workers") == 0) {
      workers = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    }
    if (std::strcmp(argv[i], "--opt") == 0) known_opt = std::atoll(argv[i + 1]);
    if (std::strcmp(argv[i], "--metrics") == 0) metrics_path = argv[i + 1];
    if (std::strcmp(argv[i], "--csv") == 0) csv_path = argv[i + 1];
    ++i;
  }
  if (machines.empty() || seeds < 1) return Usage();
  if (resume && checkpoint_path.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint FILE\n");
    return 2;
  }
  if (!checkpoint_path.empty() &&
      (!metrics_path.empty() || !csv_path.empty() ||
       record == RecordMode::kFull)) {
    // Checkpointed cells are flow-only and un-instrumented: their persisted
    // flow records ARE the output, so a resumed run stays bit-identical to
    // an uninterrupted one.  Full recording / merged metrics would need the
    // skipped cells re-run, defeating the point.
    std::fprintf(stderr,
                 "--checkpoint is incompatible with --metrics, --csv and "
                 "--record full\n");
    return 2;
  }
  {
    const std::unique_ptr<Scheduler> probe =
        MakePolicy(policy_name, 1, known_opt);
    if (!probe) {
      ComplainUnknownPolicy(policy_name);
      return 2;
    }
    if (!CheckFaultSupportOrComplain(*probe, faults)) return 2;
    if (!CheckJobFaultSupportOrComplain(*probe, job_faults, record)) return 2;
  }

  // Grid: machines x seeds, in row-major order; cell i uses seed
  // (i % seeds) + 1 on machines[i / seeds].
  std::vector<std::pair<const Instance*, int>> cells;
  for (int m : machines) {
    for (int s = 0; s < seeds; ++s) cells.emplace_back(&instance, m);
  }
  const BatchRunner runner(workers);

  if (!checkpoint_path.empty()) {
    SweepCheckpoint::Identity identity;
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(
                      FingerprintInstance(instance)));
    identity.instance_hash = hex;
    identity.policy = policy_name;
    {
      std::string joined;
      for (std::size_t mi = 0; mi < machines.size(); ++mi) {
        if (mi > 0) joined += ',';
        joined += std::to_string(machines[mi]);
      }
      identity.machines = joined;
    }
    identity.seeds = seeds;
    identity.record = "flow-only";
    identity.faults = ToString(faults.spec);
    if (job_faults.spec.active()) {
      // The job-fault axis folds into the fault identity string: a resumed
      // sweep must replay the exact same crash/checkpoint streams.
      identity.faults += "+" + ToString(job_faults.spec) + "@" +
                         CheckpointPolicyString(job_faults.spec);
    }
    SweepCheckpoint checkpoint(checkpoint_path, identity);
    if (resume) {
      std::string error;
      if (!checkpoint.resume(&error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
      }
    }
    const std::vector<SweepCellRecord> records =
        runner.Map<SweepCellRecord>(cells.size(), [&](std::size_t i) {
          if (std::optional<SweepCellRecord> done = checkpoint.completed(i)) {
            return *done;  // Survived the previous run: skip the sim.
          }
          const auto& [inst, m] = cells[i];
          std::unique_ptr<Scheduler> policy = MakePolicy(
              policy_name,
              static_cast<std::uint64_t>(i % static_cast<std::size_t>(seeds)) +
                  1,
              known_opt);
          SimOptions options = FlowOnlyOptions();
          options.faults = faults.spec;
          options.job_faults = job_faults.spec;
          const SimResult result = Simulate(*inst, m, *policy, options);
          SweepCellRecord cell;
          cell.index = i;
          cell.m = m;
          cell.seed = (i % static_cast<std::size_t>(seeds)) + 1;
          cell.max_flow = result.flows.max_flow;
          cell.horizon = result.stats.horizon;
          cell.busy_slots = result.stats.busy_slots;
          cell.executed_subjobs = result.stats.executed_subjobs;
          cell.idle_processor_slots = result.stats.idle_processor_slots;
          checkpoint.record(cell);
          return cell;
        });

    // The table is derived purely from the records, so a fresh run, a
    // checkpointed run, and a killed-and-resumed run print byte-identical
    // tables (the CI crash-tolerance gate diffs exactly this).
    TextTable table({"m", "max-flow mean", "min", "max"});
    for (std::size_t mi = 0; mi < machines.size(); ++mi) {
      std::vector<double> flows;
      for (int s = 0; s < seeds; ++s) {
        flows.push_back(static_cast<double>(
            records[mi * static_cast<std::size_t>(seeds) +
                    static_cast<std::size_t>(s)]
                .max_flow));
      }
      const SeedAggregate agg = Aggregate(flows);
      table.row("m=" + std::to_string(machines[mi]), agg.mean, agg.min,
                agg.max);
    }
    table.print(policy_name + " on " + argv[0] + ", " +
                std::to_string(seeds) + " seeds:");
    return 0;
  }
  // Pick wall times stay off so the aggregate is identical for any
  // --workers value (the determinism contract of every sweep table).
  MetricsObserver::Options observer_options;
  observer_options.record_pick_times = false;
  SimOptions sweep_options;
  sweep_options.record = record;
  sweep_options.faults = faults.spec;
  sweep_options.job_faults = job_faults.spec;
  const std::vector<BatchRunner::InstrumentedRun> runs =
      runner.RunInstrumentedSimulations(
          cells,
          [&](std::size_t i) {
            return MakePolicy(policy_name,
                              static_cast<std::uint64_t>(i % seeds) + 1,
                              known_opt);
          },
          sweep_options, observer_options);

  TextTable table({"m", "max-flow mean", "min", "max"});
  for (std::size_t mi = 0; mi < machines.size(); ++mi) {
    std::vector<double> flows;
    for (int s = 0; s < seeds; ++s) {
      flows.push_back(static_cast<double>(
          runs[mi * static_cast<std::size_t>(seeds) +
               static_cast<std::size_t>(s)]
              .result.flows.max_flow));
    }
    const SeedAggregate agg = Aggregate(flows);
    table.row("m=" + std::to_string(machines[mi]), agg.mean, agg.min,
              agg.max);
  }
  table.print(policy_name + " on " + argv[0] + ", " +
              std::to_string(seeds) + " seeds:");

  if (!metrics_path.empty() || !csv_path.empty()) {
    MetricsRegistry merged = MergedMetrics(runs);
    RunManifest manifest = MakeRunManifest(instance, machines.front(),
                                           policy_name, 1, sweep_options);
    manifest.m = machines.front();
    WriteManifest(merged, manifest);
    merged.set_manifest("cells", static_cast<std::int64_t>(cells.size()));
    merged.set_manifest("seeds", static_cast<std::int64_t>(seeds));
    if (!metrics_path.empty()) {
      if (!WriteFileOrComplain(metrics_path, merged.to_json(), "metrics")) {
        return 1;
      }
      std::printf("merged metrics written to %s\n", metrics_path.c_str());
    }
    if (!csv_path.empty()) {
      if (!WriteFileOrComplain(csv_path, merged.series_csv(),
                               "metric series CSV")) {
        return 1;
      }
      std::printf("merged metric series written to %s\n", csv_path.c_str());
    }
  }
  return 0;
}

int CmdTrace(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::optional<Instance> loaded = LoadInstanceOrComplain(argv[0]);
  if (!loaded.has_value()) return 2;
  const Instance& instance = *loaded;
  const int m = std::atoi(argv[1]);
  const std::string policy_name = argv[2];
  std::uint64_t seed = 1;
  Time known_opt = 0;
  std::string out_path;
  RecordMode record = RecordMode::kFull;
  for (int i = 3; i < argc; ++i) {
    if (std::strncmp(argv[i], "--record=", 9) == 0) {
      if (!ParseRecordMode(argv[i] + 9, &record)) return 2;
      continue;
    }
    if (i + 1 >= argc) break;
    if (std::strcmp(argv[i], "--record") == 0) {
      if (!ParseRecordMode(argv[i + 1], &record)) return 2;
    }
    if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(argv[i + 1], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--opt") == 0) known_opt = std::atoll(argv[i + 1]);
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
    ++i;
  }
  std::unique_ptr<Scheduler> policy = MakePolicy(policy_name, seed, known_opt);
  if (!policy) {
    ComplainUnknownPolicy(policy_name);
    return 2;
  }
  EventTrace streamed;
  StreamingTraceObserver trace_observer(streamed);
  RunContext context;
  // The trace streams from the hooks, so flow-only works here too; full
  // stays the default for symmetry with `run`.
  context.options.record = record;
  context.observer = &trace_observer;
  Simulate(instance, m, *policy, context);
  if (out_path.empty()) {
    std::fputs(streamed.to_text().c_str(), stdout);
  } else {
    std::string trace_error;
    if (!streamed.to_file(out_path, &trace_error)) {
      std::fprintf(stderr, "%s\n", trace_error.c_str());
      return 1;
    }
    std::printf("event trace written to %s\n", out_path.c_str());
  }
  return 0;
}

void PrintServeHelp() {
  std::fputs(
      "usage: otsched serve [flags]      streaming scheduler daemon\n"
      "\n"
      "Socket front-end over a SimDriver: NDJSON submissions in, one\n"
      "reply line per finished job out; GET /metrics and /healthz on the\n"
      "same port.  See docs/SERVING.md.\n"
      "\n"
      "  --listen H:P|unix:PATH  bind address (default 127.0.0.1:0;\n"
      "                          port 0 = ephemeral, printed on stdout)\n"
      "  --m M                   processors (default 4)\n"
      "  --policy P              scheduling policy (default alg-a/general)\n"
      "  --seed S                policy seed (default 0)\n"
      "  --chunk N               slots simulated per poll round (default 128)\n"
      "\n"
      "durability (docs/SERVING.md, \"Durability & recovery\"):\n"
      "  --journal PATH          append a write-ahead journal: every\n"
      "                          accepted job and slot advance, fsynced\n"
      "                          before the cycle's replies flush\n"
      "  --recover PATH          replay PATH through the driver before\n"
      "                          accepting connections; combined with\n"
      "                          --journal it must be the SAME file\n"
      "  --journal-rotate        truncate the journal to header + base\n"
      "                          snapshot at quiescent points (needs a\n"
      "                          warm-startable policy, e.g. fifo/first-ready)\n"
      "  --snapshot-every N      append a snapshot record at the first\n"
      "                          quiescent point every N journal records\n"
      "\n"
      "overload shedding (docs/SERVING.md, \"Overload behavior\"):\n"
      "  --max-line BYTES        longest accepted line; past it the\n"
      "                          connection gets one structured error and\n"
      "                          is closed (default 1048576)\n"
      "  --max-conns N           live-connection ceiling; extra\n"
      "                          connections are refused with an\n"
      "                          'overloaded' reply (default unlimited)\n"
      "  --max-pending N         pending-jobs watermark; submissions past\n"
      "                          it get an 'overloaded' reply and are not\n"
      "                          accepted (default unlimited)\n"
      "  --idle-timeout-ms MS    close connections idle this long that\n"
      "                          owe nothing and are owed nothing\n"
      "                          (default: never)\n",
      stdout);
}

/// Parses a nonnegative integer CLI value; complains naming the flag
/// and returns false on anything else (including trailing garbage).
bool ParseServeCount(const char* flag, const char* text, long long* out) {
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || value < 0) {
    std::fprintf(stderr, "serve: %s needs a nonnegative integer, got '%s'\n",
                 flag, text);
    return false;
  }
  *out = value;
  return true;
}

int CmdServe(int argc, char** argv) {
  serve::ServeOptions options;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    long long value = 0;
    if (arg == "--help" || arg == "-h") {
      PrintServeHelp();
      return 0;
    } else if (arg == "--listen" && i + 1 < argc) {
      options.listen = argv[++i];
    } else if (arg == "--m" && i + 1 < argc) {
      options.m = std::atoi(argv[++i]);
    } else if (arg == "--policy" && i + 1 < argc) {
      options.policy = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--chunk" && i + 1 < argc) {
      options.chunk_slots = std::atoll(argv[++i]);
    } else if (arg == "--journal" && i + 1 < argc) {
      options.journal_path = argv[++i];
    } else if (arg == "--recover" && i + 1 < argc) {
      options.recover_path = argv[++i];
    } else if (arg == "--journal-rotate") {
      options.journal_rotate = true;
    } else if (arg == "--snapshot-every" && i + 1 < argc) {
      if (!ParseServeCount("--snapshot-every", argv[++i], &value)) return 2;
      options.snapshot_every = value;
    } else if (arg == "--max-line" && i + 1 < argc) {
      if (!ParseServeCount("--max-line", argv[++i], &value)) return 2;
      if (value < 1) {
        std::fprintf(stderr, "serve: --max-line needs at least 1 byte\n");
        return 2;
      }
      options.max_line_bytes = static_cast<std::size_t>(value);
    } else if (arg == "--max-conns" && i + 1 < argc) {
      if (!ParseServeCount("--max-conns", argv[++i], &value)) return 2;
      options.max_connections = static_cast<std::size_t>(value);
    } else if (arg == "--max-pending" && i + 1 < argc) {
      if (!ParseServeCount("--max-pending", argv[++i], &value)) return 2;
      options.max_pending_jobs = value;
    } else if (arg == "--idle-timeout-ms" && i + 1 < argc) {
      if (!ParseServeCount("--idle-timeout-ms", argv[++i], &value)) return 2;
      options.idle_timeout_ms = static_cast<int>(value);
    } else if (arg == "--journal" || arg == "--recover") {
      std::fprintf(stderr, "serve: %s needs a path\n", arg.c_str());
      return 2;
    } else {
      std::fprintf(stderr,
                   "serve: unknown argument '%s' (try otsched serve --help)\n",
                   arg.c_str());
      return Usage();
    }
  }
  if (options.m < 1) {
    std::fprintf(stderr, "serve: need --m >= 1\n");
    return 2;
  }
  std::unique_ptr<Scheduler> policy =
      MakePolicy(options.policy, options.seed);
  if (policy == nullptr) {
    ComplainUnknownPolicy(options.policy);
    return 2;
  }

  static volatile std::sig_atomic_t stop_flag = 0;
  options.stop_flag = &stop_flag;
  if (!serve::InstallStopSignalHandlers(&stop_flag)) {
    std::fprintf(stderr, "serve: cannot install signal handlers\n");
    return 1;
  }

  serve::ScheduleServer server(options, std::move(policy));
  std::string error;
  if (!server.start(&error)) {
    // Unusable options (an unreadable/corrupt journal, a rotation
    // request a stateful policy cannot honor, a malformed address) are
    // invalid-input failures: exit 2, matching the rest of the CLI.
    std::fprintf(stderr, "serve: %s\n", error.c_str());
    return 2;
  }
  if (!server.recovery_summary().empty()) {
    std::printf("%s\n", server.recovery_summary().c_str());
  }
  // Line-buffered and flushed so a supervising script (the CI smoke job)
  // can scrape the resolved ephemeral port before the first submission.
  std::printf("listening on %s\n", server.address().c_str());
  std::fflush(stdout);
  server.run();
  std::printf("drained: %lld jobs submitted, %lld finished\n",
              static_cast<long long>(server.jobs_submitted()),
              static_cast<long long>(server.jobs_finished()));
  return 0;
}

int CmdFaults(int argc, char** argv) {
  if (argc < 1) return Usage();
  const std::string verb = argv[0];

  if (verb == "emit" && (argc == 4 || argc == 5)) {
    // Freeze a stochastic model's first `horizon` slots into an explicit,
    // reviewable CSV budget trace.
    FaultArgs faults;
    if (!ParseFaultsFlagOrComplain(argv[1], &faults)) return 2;
    if (!faults.spec.active()) {
      std::fprintf(stderr, "faults emit: model 'none' has no trace\n");
      return 2;
    }
    if (faults.spec.model == FaultModel::kAdversarialDip) {
      std::fprintf(stderr,
                   "faults emit: adversarial-dip depends on the run and has "
                   "no standalone trace\n");
      return 2;
    }
    const int m = std::atoi(argv[2]);
    const Time horizon = std::atoll(argv[3]);
    if (m < 1 || horizon < 1) {
      std::fprintf(stderr, "faults emit: need m >= 1 and horizon >= 1\n");
      return 2;
    }
    const BudgetTrace trace = MaterializeBudgetTrace(faults.spec, m, horizon);
    if (argc == 5) {
      if (!WriteFileOrComplain(argv[4], trace.to_csv(), "budget trace")) {
        return 1;
      }
      std::printf("wrote %s: %zu faulted slots over horizon %lld (m=%d)\n",
                  argv[4], trace.entry_count(),
                  static_cast<long long>(horizon), m);
    } else {
      std::fputs(trace.to_csv().c_str(), stdout);
    }
    return 0;
  }

  if (verb == "inspect" && argc == 3) {
    FaultArgs faults;
    if (!LoadFaultsTraceOrComplain(argv[1], &faults)) return 2;
    const BudgetTrace& trace = *faults.trace_storage;
    const int m = std::atoi(argv[2]);
    if (m < 1) {
      std::fprintf(stderr, "faults inspect: need m >= 1\n");
      return 2;
    }
    int min_capacity = m;
    std::int64_t shortfall = 0;
    std::int64_t faulted = 0;
    for (std::size_t i = 0; i < trace.entry_count(); ++i) {
      const Time slot = trace.entry(i).first;
      const int capacity = trace.capacity_at(slot, m);
      if (capacity < m) {
        ++faulted;
        shortfall += m - capacity;
      }
      if (capacity < min_capacity) min_capacity = capacity;
    }
    std::printf("entries        : %zu\n", trace.entry_count());
    std::printf("last pinned    : slot %lld\n",
                static_cast<long long>(trace.length()));
    std::printf("faulted slots  : %lld (of the pinned ones, at m=%d)\n",
                static_cast<long long>(faulted), m);
    std::printf("min capacity   : %d\n", min_capacity);
    std::printf("shortfall      : %lld processor-slots\n",
                static_cast<long long>(shortfall));
    return 0;
  }

  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "gen") return CmdGen(argc - 2, argv + 2);
  if (command == "adversary") return CmdAdversary(argc - 2, argv + 2);
  if (command == "bounds") return CmdBounds(argc - 2, argv + 2);
  if (command == "describe") return CmdDescribe(argc - 2, argv + 2);
  if (command == "run") return CmdRun(argc - 2, argv + 2);
  if (command == "sweep") return CmdSweep(argc - 2, argv + 2);
  if (command == "trace") return CmdTrace(argc - 2, argv + 2);
  if (command == "faults") return CmdFaults(argc - 2, argv + 2);
  if (command == "serve") return CmdServe(argc - 2, argv + 2);
  if (command == "list-policies") {
    ListPolicies();
    return 0;
  }
  if (command == "list-job-faults") {
    ListJobFaults();
    return 0;
  }
  if (command == "policies" || command == "--list-policies") {
    std::fprintf(stderr,
                 "`otsched %s` was renamed to `otsched list-policies`\n",
                 command.c_str());
    return 2;
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return Usage();
}
