#!/usr/bin/env python3
"""Streams otsched-instance-v1 files into an `otsched serve` daemon.

Stdlib-only client for the NDJSON wire protocol (docs/SERVING.md): each
job becomes one submission line in the explicit nodes+edges spelling,

    {"id": "<file>#<k>", "release": R, "nodes": N, "edges": [[u, v], ...]}

sent with a bounded in-flight window, and each reply line

    {"job_id": J, "id": "<tag>", "release": R, "finish": F, "flow": W}

is checked: every submitted job must be answered exactly once, with
flow == finish - release and the echoed (effective) release >= the
requested one.  Any {"error": ...} reply, short stream, or failed check
exits nonzero — which makes this the CI serve smoke probe.

Usage: serve_client.py --addr HOST:PORT|unix:/path [--window N] file.inst ...
"""

import argparse
import json
import socket
import sys


def parse_instance(path):
    """Parses the otsched-instance-v1 text format (src/job/serialize.cc).

    Returns a list of (release, node_count, edges) triples in file order.
    """
    jobs = []
    with open(path, encoding="utf-8") as f:
        lines = []
        for raw in f:
            line = raw.split("#", 1)[0].strip()
            if line:
                lines.append(line)
    if not lines or lines[0].split()[0] != "otsched-instance-v1":
        raise ValueError(f"{path}: not an otsched-instance-v1 file")
    i = 1
    while i < len(lines):
        fields = lines[i].split()
        if fields[0] == "name":
            i += 1
            continue
        if fields[0] != "job":
            raise ValueError(f"{path}: unknown keyword {fields[0]!r}")
        if len(fields) < 3:
            raise ValueError(f"{path}: job needs release and size")
        release, node_count = int(fields[1]), int(fields[2])
        i += 1
        edges = []
        while i < len(lines) and lines[i].split()[0] != "end":
            u, v = lines[i].split()[:2]
            edges.append([int(u), int(v)])
            i += 1
        if i == len(lines):
            raise ValueError(f"{path}: unterminated job")
        i += 1  # skip "end"
        jobs.append((release, node_count, edges))
    return jobs


def connect(addr):
    if addr.startswith("unix:"):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(addr[len("unix:"):])
        return sock
    host, _, port = addr.rpartition(":")
    return socket.create_connection((host, int(port)))


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--addr", required=True,
                        help="daemon address: HOST:PORT or unix:/path")
    parser.add_argument("--window", type=int, default=64,
                        help="max in-flight (unanswered) submissions")
    parser.add_argument("files", nargs="+", help="otsched-instance-v1 files")
    args = parser.parse_args(argv[1:])

    submissions = []  # tag -> requested release, via parallel dict
    requested = {}
    for path in args.files:
        for k, (release, node_count, edges) in enumerate(
                parse_instance(path)):
            tag = f"{path}#{k}"
            line = {"id": tag, "release": release, "nodes": node_count}
            if edges:
                line["edges"] = edges
            submissions.append(json.dumps(line) + "\n")
            requested[tag] = release

    sock = connect(args.addr)
    reader = sock.makefile("r", encoding="utf-8", newline="\n")

    answered = 0
    failures = 0

    def read_reply():
        nonlocal answered, failures
        line = reader.readline()
        if not line:
            raise EOFError("daemon closed the stream early")
        reply = json.loads(line)
        if "error" in reply:
            print(f"error reply: {reply['error']}", file=sys.stderr)
            failures += 1
            return
        tag = reply.get("id")
        if tag not in requested:
            print(f"reply for unknown tag {tag!r}", file=sys.stderr)
            failures += 1
            return
        want = requested.pop(tag)
        release, finish, flow = (reply["release"], reply["finish"],
                                 reply["flow"])
        if release < want or flow != finish - release or flow < 1:
            print(f"bad reply for {tag}: requested release {want}, "
                  f"got {line.strip()}", file=sys.stderr)
            failures += 1
            return
        answered += 1

    try:
        in_flight = 0
        for line in submissions:
            while in_flight >= args.window:
                read_reply()
                in_flight -= 1
            sock.sendall(line.encode("utf-8"))
            in_flight += 1
        sock.shutdown(socket.SHUT_WR)  # daemon flushes replies, then closes
        while in_flight > 0:
            read_reply()
            in_flight -= 1
    except EOFError as err:
        print(f"{err} ({answered}/{len(submissions)} answered)",
              file=sys.stderr)
        return 1
    finally:
        sock.close()

    if failures or requested:
        print(f"{failures} failures, {len(requested)} unanswered "
              f"of {len(submissions)}", file=sys.stderr)
        return 1
    print(f"{answered} jobs streamed and verified "
          f"(window {args.window})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
