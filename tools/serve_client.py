#!/usr/bin/env python3
"""Streams otsched-instance-v1 files into an `otsched serve` daemon.

Stdlib-only client for the NDJSON wire protocol (docs/SERVING.md): each
job becomes one submission line in the explicit nodes+edges spelling,

    {"id": "<file>#<k>", "release": R, "nodes": N, "edges": [[u, v], ...]}

sent with a bounded in-flight window, and each reply line

    {"job_id": J, "id": "<tag>", "release": R, "finish": F, "flow": W}

is checked: every submitted job must be answered exactly once, with
flow == finish - release and the echoed (effective) release >= the
requested one.  Any {"error": ...} reply, short stream, duplicate reply,
or failed check exits nonzero — which makes this the CI serve smoke
probe.

With --reconnect the client rides out dropped connections (a daemon
restart, a chaos proxy cutting the wire): it reconnects with capped
exponential backoff and resubmits its unacknowledged tags in their
original order.  The daemon's reply parking / orphan adoption
(docs/SERVING.md, "Durability & recovery") turns each resubmission into
the original reply — the exactly-once check above doubles as the proof
that no duplicate flow replies arrive after a reconnect.

Usage: serve_client.py --addr HOST:PORT|unix:/path [--window N]
                       [--reconnect] [--max-retries N] file.inst ...
"""

import argparse
import json
import socket
import sys
import time


def parse_instance(path):
    """Parses the otsched-instance-v1 text format (src/job/serialize.cc).

    Returns a list of (release, node_count, edges) triples in file order.
    """
    jobs = []
    with open(path, encoding="utf-8") as f:
        lines = []
        for raw in f:
            line = raw.split("#", 1)[0].strip()
            if line:
                lines.append(line)
    if not lines or lines[0].split()[0] != "otsched-instance-v1":
        raise ValueError(f"{path}: not an otsched-instance-v1 file")
    i = 1
    while i < len(lines):
        fields = lines[i].split()
        if fields[0] == "name":
            i += 1
            continue
        if fields[0] != "job":
            raise ValueError(f"{path}: unknown keyword {fields[0]!r}")
        if len(fields) < 3:
            raise ValueError(f"{path}: job needs release and size")
        release, node_count = int(fields[1]), int(fields[2])
        i += 1
        edges = []
        while i < len(lines) and lines[i].split()[0] != "end":
            u, v = lines[i].split()[:2]
            edges.append([int(u), int(v)])
            i += 1
        if i == len(lines):
            raise ValueError(f"{path}: unterminated job")
        i += 1  # skip "end"
        jobs.append((release, node_count, edges))
    return jobs


def connect(addr):
    if addr.startswith("unix:"):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(addr[len("unix:"):])
        return sock
    host, _, port = addr.rpartition(":")
    return socket.create_connection((host, int(port)))


class Client:
    """One verified streaming session, surviving reconnects."""

    def __init__(self, args, submissions, requested):
        self.args = args
        self.submissions = submissions  # [(tag, line)], file order
        self.requested = requested      # tag -> requested release
        self.unacked = {}               # tag -> line, submission order
        self.answered_tags = set()
        self.next_index = 0
        self.answered = 0
        self.failures = 0
        self.reconnects = 0

    def read_reply(self, reader):
        line = reader.readline()
        if not line:
            raise EOFError("daemon closed the stream early")
        reply = json.loads(line)
        if "error" in reply:
            print(f"error reply: {reply['error']}", file=sys.stderr)
            self.failures += 1
            return
        tag = reply.get("id")
        if tag in self.answered_tags:
            # The --reconnect contract under test: a resubmitted tag must
            # never produce a second flow reply.
            print(f"duplicate flow reply for {tag!r}", file=sys.stderr)
            self.failures += 1
            return
        if tag not in self.requested:
            print(f"reply for unknown tag {tag!r}", file=sys.stderr)
            self.failures += 1
            return
        want = self.requested.pop(tag)
        self.unacked.pop(tag, None)
        self.answered_tags.add(tag)
        release, finish, flow = (reply["release"], reply["finish"],
                                 reply["flow"])
        if release < want or flow != finish - release or flow < 1:
            print(f"bad reply for {tag}: requested release {want}, "
                  f"got {line.strip()}", file=sys.stderr)
            self.failures += 1
            return
        self.answered += 1

    def stream_once(self):
        """One connection's worth of progress; raises OSError/EOFError on
        a drop (the caller decides whether to reconnect)."""
        sock = connect(self.args.addr)
        try:
            reader = sock.makefile("r", encoding="utf-8", newline="\n")
            # After a drop: resubmit every unacknowledged tag first, in
            # the order it was originally sent, so the daemon's replay
            # (parked replies / adopted orphans) lines up with ours.
            for line in self.unacked.values():
                sock.sendall(line.encode("utf-8"))
            while self.next_index < len(self.submissions):
                while len(self.unacked) >= self.args.window:
                    self.read_reply(reader)
                tag, line = self.submissions[self.next_index]
                sock.sendall(line.encode("utf-8"))
                self.unacked[tag] = line
                self.next_index += 1
            sock.shutdown(socket.SHUT_WR)  # daemon flushes, then closes
            while self.unacked:
                self.read_reply(reader)
        finally:
            sock.close()

    def run(self):
        attempt = 0
        while True:
            answered_before = self.answered
            try:
                self.stream_once()
                return 0
            except (EOFError, OSError) as err:
                if not self.args.reconnect:
                    print(f"{err} ({self.answered}/{len(self.submissions)} "
                          f"answered)", file=sys.stderr)
                    return 1
                if self.answered > answered_before:
                    attempt = 0  # progress: restart the backoff ladder
                if attempt >= self.args.max_retries:
                    print(f"giving up after {attempt} reconnect attempts: "
                          f"{err}", file=sys.stderr)
                    return 1
                delay = min(self.args.backoff * (2 ** attempt),
                            self.args.backoff_cap)
                attempt += 1
                self.reconnects += 1
                print(f"connection dropped ({err}); retry {attempt} "
                      f"in {delay:.2f}s with {len(self.unacked)} "
                      f"unacked tags", file=sys.stderr)
                time.sleep(delay)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--addr", required=True,
                        help="daemon address: HOST:PORT or unix:/path")
    parser.add_argument("--window", type=int, default=64,
                        help="max in-flight (unanswered) submissions")
    parser.add_argument("--reconnect", action="store_true",
                        help="survive dropped connections: reconnect with "
                             "capped exponential backoff and resubmit "
                             "unacknowledged tags in original order")
    parser.add_argument("--max-retries", type=int, default=8,
                        help="consecutive no-progress reconnects before "
                             "giving up (default 8)")
    parser.add_argument("--backoff", type=float, default=0.05,
                        help="first reconnect delay, seconds (default 0.05)")
    parser.add_argument("--backoff-cap", type=float, default=2.0,
                        help="largest reconnect delay, seconds (default 2)")
    parser.add_argument("files", nargs="+", help="otsched-instance-v1 files")
    args = parser.parse_args(argv[1:])

    submissions = []
    requested = {}
    for path in args.files:
        for k, (release, node_count, edges) in enumerate(
                parse_instance(path)):
            tag = f"{path}#{k}"
            line = {"id": tag, "release": release, "nodes": node_count}
            if edges:
                line["edges"] = edges
            submissions.append((tag, json.dumps(line) + "\n"))
            requested[tag] = release

    client = Client(args, submissions, requested)
    status = client.run()
    if status != 0:
        return status
    if client.failures or client.requested:
        print(f"{client.failures} failures, {len(client.requested)} "
              f"unanswered of {len(submissions)}", file=sys.stderr)
        return 1
    extra = (f", {client.reconnects} reconnects"
             if client.reconnects else "")
    print(f"{client.answered} jobs streamed and verified "
          f"(window {args.window}{extra})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
