#!/usr/bin/env bash
# Chaos gate for `otsched serve` (docs/SERVING.md): run the stdlib
# client through tools/chaos_proxy.py, which deterministically drops
# connections mid-line, re-chunks bytes, and duplicates submission
# lines.  serve_client.py --reconnect must still verify every job
# exactly once, and the daemon's dedup index must absorb every
# duplicate (surfaced as serve.duplicate_submissions, not extra jobs).
#
# Usage: serve_chaos_smoke.sh <otsched-binary> <workdir>
set -euo pipefail

BIN=$(readlink -f "$1")
WORK=$2
TOOLS=$(dirname "$(readlink -f "$0")")
mkdir -p "$WORK"
cd "$WORK"

"$BIN" gen trees 60 12 6 7 chaos.inst > /dev/null

"$BIN" serve --listen 127.0.0.1:0 --m 3 --policy fifo/first-ready \
  > daemon.log 2>&1 &
DPID=$!
trap 'kill "$DPID" 2>/dev/null || true' EXIT
PORT=""
for _ in $(seq 100); do
  PORT=$(awk '/^listening on /{sub(/.*:/, "", $3); print $3; exit}' \
         daemon.log 2>/dev/null)
  [ -n "$PORT" ] && break
  sleep 0.1
done
[ -n "$PORT" ] || { cat daemon.log >&2; exit 1; }

# Seed 3 with these probabilities is a *proven* tune: several injected
# drops and duplicated lines over a 60-job stream, while the client's
# 8-retry budget comfortably survives the drop rate.
python3 "$TOOLS/chaos_proxy.py" --upstream "127.0.0.1:$PORT" --seed 3 \
  --drop-prob 0.008 --dup-prob 0.05 --max-split 64 > proxy.log 2>&1 &
PROXY_PID=$!
PPORT=""
for _ in $(seq 100); do
  PPORT=$(awk '/^proxy listening on /{sub(/.*:/, "", $4); print $4; exit}' \
          proxy.log 2>/dev/null)
  [ -n "$PPORT" ] && break
  sleep 0.1
done
[ -n "$PPORT" ] || { cat proxy.log >&2; exit 1; }

python3 "$TOOLS/serve_client.py" --addr "127.0.0.1:$PPORT" --window 16 \
  --reconnect --backoff 0.02 chaos.inst

# The client already proved exactly-once replies for all 60 unique
# tags.  Daemon-side: every accepted job finished, at least the 60
# unique jobs ran (a reply lost with a dropped connection makes the
# resubmission a legitimate new job — at-least-once work, exactly-once
# replies), and proxy-duplicated lines of in-flight tags were deduped
# rather than becoming extra jobs in the same batch.
curl -fsS "http://127.0.0.1:$PORT/metrics" > chaos.metrics.json
python3 "$TOOLS/check_metrics_schema.py" chaos.metrics.json
python3 - <<'EOF'
import json
doc = json.load(open("chaos.metrics.json"))
counters = doc["counters"]
submitted = counters["serve.jobs_submitted"]
finished = counters["serve.jobs_finished"]
assert finished == submitted, counters
assert submitted >= 60, counters
print("chaos smoke: %d jobs ran for 60 unique tags; %d duplicates deduped"
      % (submitted, counters.get("serve.duplicate_submissions", 0)))
EOF

kill -TERM "$DPID"; wait "$DPID"
trap - EXIT
# The proxy serves until killed (--max-conns 0), so no "proxy done"
# summary line is expected here — the assertions above are the gate.
kill "$PROXY_PID" 2>/dev/null || true
echo "serve chaos smoke: PASS"
