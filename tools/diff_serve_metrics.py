#!/usr/bin/env python3
"""Compares two `otsched serve` /metrics captures modulo durability noise.

The crash-recovery contract (docs/SERVING.md) is that a SIGKILLed and
--recover'ed daemon converges to the SAME serving state as one that
never crashed: same jobs submitted/finished, same total work, same
final slot.  What legitimately differs is the *history* of getting
there — how many connections it took, how many journal records were
committed, how many replies were parked and re-claimed.  This tool
deletes exactly that noise from both captures and diffs the rest,
so CI can assert convergence with one exit code.

Normalization:
  * manifest: drop "instance" (embeds the listen address, which is
    ephemeral) and "instance_hash" (derived from it);
  * counters: drop serve.connections, serve.http_requests, and every
    journal/recovery/overload counter (serve.journal_*,
    serve.recovered_*, serve.replies_parked,
    serve.duplicate_submissions, serve.rejected_*,
    serve.overloaded_replies, serve.idle_timeouts);
  * gauges: drop serve.arena_nodes (arena capacity depends on replay
    batching) and keep only the "last" sample of the rest — min/mean/
    count summarize the observation history, not the converged state;
  * histograms/series: kept verbatim (the daemon emits none today;
    if one appears, a diff should fail loudly and force a decision).

Usage: diff_serve_metrics.py <recovered.json> <uninterrupted.json>
Exit 0 when the normalized documents are identical; exit 1 with a
per-key report otherwise.
"""

import json
import sys

DROP_COUNTERS = ("serve.connections", "serve.http_requests")
DROP_COUNTER_PREFIXES = ("serve.journal_", "serve.recovered_",
                         "serve.rejected_")
DROP_COUNTER_EXACT = ("serve.replies_parked", "serve.duplicate_submissions",
                      "serve.overloaded_replies", "serve.idle_timeouts")
DROP_GAUGES = ("serve.arena_nodes",)


def normalize(doc):
    out = json.loads(json.dumps(doc))  # deep copy
    manifest = out.get("manifest", {})
    manifest.pop("instance", None)
    manifest.pop("instance_hash", None)
    counters = out.get("counters", {})
    for name in list(counters):
        if (name in DROP_COUNTERS or name in DROP_COUNTER_EXACT
                or name.startswith(DROP_COUNTER_PREFIXES)):
            del counters[name]
    gauges = out.get("gauges", {})
    for name in list(gauges):
        if name in DROP_GAUGES:
            del gauges[name]
        else:
            gauges[name] = {"last": gauges[name].get("last")}
    return out


def report(path_a, a, path_b, b, crumb=""):
    """Prints the differing leaves; returns how many it found."""
    if isinstance(a, dict) and isinstance(b, dict):
        count = 0
        for key in sorted(set(a) | set(b)):
            where = f"{crumb}.{key}" if crumb else key
            if key not in a:
                print(f"  {where}: only in {path_b}: {b[key]!r}")
                count += 1
            elif key not in b:
                print(f"  {where}: only in {path_a}: {a[key]!r}")
                count += 1
            else:
                count += report(path_a, a[key], path_b, b[key], where)
        return count
    if a != b:
        print(f"  {crumb}: {a!r} != {b!r}")
        return 1
    return 0


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    docs = []
    for path in argv[1:]:
        with open(path, encoding="utf-8") as f:
            docs.append(normalize(json.load(f)))
    if docs[0] == docs[1]:
        print(f"serve metrics converge: {argv[1]} == {argv[2]} "
              "(modulo durability counters)")
        return 0
    print(f"serve metrics DIVERGE between {argv[1]} and {argv[2]}:")
    report(argv[1], docs[0], argv[2], docs[1])
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
