#!/usr/bin/env python3
"""Gate bench-smoke on the committed microbenchmark baseline.

Compares a fresh Google-Benchmark JSON export against the committed
``results/BENCH_micro.json`` and fails (exit 1) when either

  * any shared benchmark's ``items_per_second`` regressed by more than
    --max-regression (default 15%), or
  * a benchmark whose family starts with --strict-prefix (default
    ``BM_EngineSparseFlowOnly``, the reversible-core no-lost-work
    budget from docs/ROBUSTNESS.md) regressed by more than
    --strict-regression (default 5%), or
  * the observed-engine overhead ratio — flow-only-observed time over
    flow-only time at the same job count — exceeds --max-overhead
    (default 2.0x), the batched-observer budget from OBSERVABILITY.md.

Benchmarks present on only one side are reported but never fatal, so
adding or retiring a benchmark does not require touching this script.
CI machines are noisy; the thresholds are deliberately loose enough
that only a real hot-path regression trips them.  Stdlib only.
"""

import argparse
import json
import sys

OBSERVED_PAIRS = [
    # (numerator benchmark family, denominator family) -> overhead ratio.
    ("BM_EngineSparseFlowOnlyObserved", "BM_EngineSparseFlowOnly"),
]


def load_benchmarks(path):
    """Returns {name: benchmark dict} for iteration runs in `path`."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    out = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        out[bench["name"]] = bench
    return out


def family_and_arg(name):
    """Splits 'BM_Foo/512' into ('BM_Foo', '512'); arg may be ''."""
    family, _, arg = name.partition("/")
    return family, arg


def check_regressions(baseline, candidate, max_regression, lines,
                      strict_prefix="", strict_regression=None):
    failures = 0
    shared = sorted(set(baseline) & set(candidate))
    for name in sorted(set(baseline) - set(candidate)):
        lines.append(f"note: {name} only in baseline (skipped)")
    for name in sorted(set(candidate) - set(baseline)):
        lines.append(f"note: {name} only in candidate (new, skipped)")
    for name in shared:
        base_ips = baseline[name].get("items_per_second")
        cand_ips = candidate[name].get("items_per_second")
        if not base_ips or not cand_ips:
            lines.append(f"note: {name} has no items_per_second (skipped)")
            continue
        floor = max_regression
        if strict_prefix and strict_regression is not None and \
                family_and_arg(name)[0].startswith(strict_prefix):
            floor = strict_regression
        change = cand_ips / base_ips - 1.0
        status = "ok"
        if change < -floor:
            status = "FAIL"
            failures += 1
        lines.append(
            f"{status}: {name} items/s {base_ips:.3e} -> {cand_ips:.3e} "
            f"({change:+.1%}, floor {-floor:.0%})"
        )
    return failures


def check_overhead(candidate, max_overhead, lines):
    """Observed/flow-only wall-time ratio per job-count arg."""
    failures = 0
    by_family = {}
    for name, bench in candidate.items():
        family, arg = family_and_arg(name)
        by_family.setdefault(family, {})[arg] = bench
    for observed, plain in OBSERVED_PAIRS:
        obs_runs = by_family.get(observed, {})
        plain_runs = by_family.get(plain, {})
        for arg in sorted(set(obs_runs) & set(plain_runs)):
            ratio = obs_runs[arg]["real_time"] / plain_runs[arg]["real_time"]
            status = "ok"
            if ratio > max_overhead:
                status = "FAIL"
                failures += 1
            lines.append(
                f"{status}: {observed}/{arg} vs {plain}/{arg} "
                f"overhead {ratio:.2f}x (budget {max_overhead:.1f}x)"
            )
    return failures


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_micro.json")
    parser.add_argument("--candidate", required=True,
                        help="freshly produced benchmark JSON")
    parser.add_argument("--report", default=None,
                        help="also write the line-per-benchmark report here")
    parser.add_argument("--max-regression", type=float, default=0.15,
                        help="max tolerated items/s drop (fraction)")
    parser.add_argument("--strict-prefix", default="BM_EngineSparseFlowOnly",
                        help="family prefix held to the strict floor "
                             "(empty string disables)")
    parser.add_argument("--strict-regression", type=float, default=0.05,
                        help="max tolerated items/s drop for strict "
                             "families (fraction)")
    parser.add_argument("--max-overhead", type=float, default=2.0,
                        help="max observed-vs-flow-only time ratio")
    args = parser.parse_args(argv)

    baseline = load_benchmarks(args.baseline)
    candidate = load_benchmarks(args.candidate)

    lines = []
    failures = check_regressions(baseline, candidate, args.max_regression,
                                 lines, args.strict_prefix,
                                 args.strict_regression)
    failures += check_overhead(candidate, args.max_overhead, lines)

    verdict = "PASS" if failures == 0 else f"FAIL ({failures} violations)"
    lines.append(f"bench trend: {verdict}")
    report = "\n".join(lines) + "\n"
    sys.stdout.write(report)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(report)
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
