#!/usr/bin/env python3
"""Fault-injecting TCP proxy for `otsched serve` (docs/ROBUSTNESS.md).

Stdlib-only.  Sits between a client and the daemon and misbehaves on
purpose, deterministically (--seed):

  * connection drops  — with --drop-prob, any forwarded chunk may
    instead close BOTH sides mid-stream (the half-written-line crash a
    reconnecting client must survive);
  * byte splits + delays — client->server bytes are re-chunked into
    random 1..--max-split slices, each optionally delayed up to
    --max-delay-ms, so daemon line reassembly sees every framing;
  * duplicate submissions — with --dup-prob, a complete client line is
    forwarded twice (the daemon's pending-tag dedup must reply once).

Each accepted connection gets its own RNG stream (seed ^ connection
index), so a run is reproducible regardless of thread interleaving.

Usage:
  chaos_proxy.py --listen PORT --upstream HOST:PORT [--seed N]
                 [--drop-prob P] [--dup-prob P] [--max-split N]
                 [--max-delay-ms MS] [--max-conns N]

Prints "proxy listening on 127.0.0.1:PORT" (flushed) once ready, then
serves until stdin closes or --max-conns connections have finished.
Exit 0 on a clean run; the *correctness* checks live in the client
(serve_client.py --reconnect) and the daemon's own metrics.
"""

import argparse
import random
import socket
import sys
import threading
import time


class Drop(Exception):
    """Injected connection drop."""


class Pump(threading.Thread):
    """One direction of one proxied connection."""

    def __init__(self, name, src, dst, chaos, rng, stats):
        super().__init__(name=name, daemon=True)
        self.src, self.dst = src, dst
        self.chaos = chaos  # True only client->server: mutate submissions
        self.rng = rng
        self.stats = stats
        self.args = stats["args"]
        self.carry = b""  # partial line awaiting its newline (dup logic)

    def maybe_drop(self):
        if self.rng.random() < self.args.drop_prob:
            raise Drop()

    def forward(self, data):
        """Re-chunks and delays; duplicates completed lines."""
        if not self.chaos:
            self.dst.sendall(data)
            return
        if self.args.dup_prob > 0:
            # Duplicate at line granularity: a torn duplicate would be a
            # parse error, which is a different fault family.
            self.carry += data
            out = b""
            while True:
                newline = self.carry.find(b"\n")
                if newline < 0:
                    break
                line = self.carry[:newline + 1]
                self.carry = self.carry[newline + 1:]
                out += line
                if self.rng.random() < self.args.dup_prob:
                    out += line
                    self.stats["dups"] += 1
            data = out + b""
            if not data:
                return
        sent = 0
        while sent < len(data):
            self.maybe_drop()
            size = self.rng.randint(1, self.args.max_split)
            chunk = data[sent:sent + size]
            if self.args.max_delay_ms > 0:
                time.sleep(self.rng.random() *
                           self.args.max_delay_ms / 1000.0)
            self.dst.sendall(chunk)
            self.stats["chunks"] += 1
            sent += len(chunk)

    def run(self):
        try:
            while True:
                data = self.src.recv(65536)
                if not data:
                    break
                self.forward(data)
            # Flush any carried partial line before passing the FIN on.
            if self.carry:
                self.dst.sendall(self.carry)
            try:
                self.dst.shutdown(socket.SHUT_WR)
            except OSError:
                pass
        except Drop:
            self.stats["drops"] += 1
            for sock in (self.src, self.dst):
                try:
                    sock.close()
                except OSError:
                    pass
        except OSError:
            pass


def serve(args):
    host, _, port = args.upstream.rpartition(":")
    upstream = (host or "127.0.0.1", int(port))
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", args.listen))
    listener.listen(64)
    bound = listener.getsockname()
    print(f"proxy listening on {bound[0]}:{bound[1]}", flush=True)

    stats = {"args": args, "conns": 0, "drops": 0, "dups": 0, "chunks": 0}
    pumps = []
    try:
        while args.max_conns == 0 or stats["conns"] < args.max_conns:
            try:
                client, _ = listener.accept()
            except OSError:
                break
            index = stats["conns"]
            stats["conns"] += 1
            try:
                server = socket.create_connection(upstream)
            except OSError as err:
                print(f"upstream connect failed: {err}", file=sys.stderr)
                client.close()
                continue
            # Independent deterministic streams per connection and
            # direction; thread scheduling cannot change the draws.
            c2s = Pump(f"c2s-{index}", client, server, True,
                       random.Random(args.seed ^ (2 * index)), stats)
            s2c = Pump(f"s2c-{index}", server, client, False,
                       random.Random(args.seed ^ (2 * index + 1)), stats)
            c2s.start()
            s2c.start()
            pumps += [c2s, s2c]
    finally:
        listener.close()
    for pump in pumps:
        pump.join(timeout=30)
    print(f"proxy done: {stats['conns']} connections, "
          f"{stats['drops']} injected drops, {stats['dups']} duplicated "
          f"lines, {stats['chunks']} chunks", flush=True)
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--listen", type=int, default=0,
                        help="local port (default: ephemeral, printed)")
    parser.add_argument("--upstream", required=True,
                        help="daemon address HOST:PORT")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--drop-prob", type=float, default=0.0,
                        help="per-chunk probability of dropping the "
                             "connection (both directions)")
    parser.add_argument("--dup-prob", type=float, default=0.0,
                        help="per-line probability of duplicating a "
                             "client submission line")
    parser.add_argument("--max-split", type=int, default=512,
                        help="largest forwarded chunk, bytes (default 512)")
    parser.add_argument("--max-delay-ms", type=float, default=0.0,
                        help="largest per-chunk delay, milliseconds")
    parser.add_argument("--max-conns", type=int, default=0,
                        help="exit after N proxied connections "
                             "(default: run until killed)")
    args = parser.parse_args(argv[1:])
    if args.max_split < 1:
        parser.error("--max-split must be >= 1")
    return serve(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
