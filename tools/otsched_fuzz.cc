// Differential fuzz driver: grinds every registered scheduling policy
// against the paper-invariant oracles on seeded random instances.
//
//   otsched_fuzz --seeds 256                 # the full battery
//   otsched_fuzz --seeds 64 --max-jobs 12    # the CI smoke configuration
//   otsched_fuzz --replay results/fuzz-repros/repro_....inst
//
// Exit status 0 means zero invariant violations; 1 means at least one
// violation (each reported with a shrunk, serialized repro).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/diffrun.h"

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --seeds N           fuzz seeds to run (default 64)\n"
      "  --seed-base N       offset added to every seed (default 1)\n"
      "  --max-jobs N        max jobs per generated instance (default 10)\n"
      "  --max-nodes N       max subjobs per generated job (default 36)\n"
      "  --machines A,B,..   machine sizes (default 1,2,3,4,8)\n"
      "  --alpha N           reduction factor for the Section 5 oracles "
      "(default 4)\n"
      "  --workers N         thread-pool width (default: hardware)\n"
      "  --repro-dir PATH    where to write shrunk repros (default\n"
      "                      results/fuzz-repros; empty string disables)\n"
      "  --shrink-evals N    shrink budget per failure (default 160)\n"
      "  --no-brute-force    skip the exhaustive-search cross-checks\n"
      "  --no-opt-certificates  skip the certified lower-bound oracle\n"
      "  --job-faults        add the job-fault legs (no-lost-work +\n"
      "                      committed feasibility) to every case\n"
      "  --replay FILE       re-run one serialized repro and exit\n",
      argv0);
  std::exit(2);
}

long long ParseInt(const char* argv0, const char* flag, const char* value) {
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "%s: bad integer for %s: '%s'\n", argv0, flag,
                 value);
    std::exit(2);
  }
  return parsed;
}

std::vector<int> ParseMachineList(const char* argv0, const char* value) {
  std::vector<int> machines;
  std::stringstream in(value);
  std::string cell;
  while (std::getline(in, cell, ',')) {
    if (cell.empty()) continue;
    machines.push_back(
        static_cast<int>(ParseInt(argv0, "--machines", cell.c_str())));
  }
  if (machines.empty()) {
    std::fprintf(stderr, "%s: --machines needs at least one size\n", argv0);
    std::exit(2);
  }
  return machines;
}

}  // namespace

int main(int argc, char** argv) {
  otsched::FuzzOptions options;
  options.repro_dir = "results/fuzz-repros";
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (std::strcmp(arg, "--seeds") == 0) {
      options.seeds = static_cast<int>(ParseInt(argv[0], arg, value()));
    } else if (std::strcmp(arg, "--seed-base") == 0) {
      options.seed_base =
          static_cast<std::uint64_t>(ParseInt(argv[0], arg, value()));
    } else if (std::strcmp(arg, "--max-jobs") == 0) {
      options.max_jobs = static_cast<int>(ParseInt(argv[0], arg, value()));
    } else if (std::strcmp(arg, "--max-nodes") == 0) {
      options.max_job_nodes =
          static_cast<otsched::NodeId>(ParseInt(argv[0], arg, value()));
    } else if (std::strcmp(arg, "--machines") == 0) {
      options.machine_sizes = ParseMachineList(argv[0], value());
    } else if (std::strcmp(arg, "--alpha") == 0) {
      options.alpha = static_cast<int>(ParseInt(argv[0], arg, value()));
    } else if (std::strcmp(arg, "--workers") == 0) {
      options.workers =
          static_cast<std::size_t>(ParseInt(argv[0], arg, value()));
    } else if (std::strcmp(arg, "--repro-dir") == 0) {
      options.repro_dir = value();
    } else if (std::strcmp(arg, "--shrink-evals") == 0) {
      options.max_shrink_evals =
          static_cast<int>(ParseInt(argv[0], arg, value()));
    } else if (std::strcmp(arg, "--no-brute-force") == 0) {
      options.cross_check_brute_force = false;
    } else if (std::strcmp(arg, "--no-opt-certificates") == 0) {
      options.opt_certificates = false;
    } else if (std::strcmp(arg, "--job-faults") == 0) {
      options.job_faults = true;
    } else if (std::strcmp(arg, "--replay") == 0) {
      replay_path = value();
    } else {
      Usage(argv[0]);
    }
  }

  // Map out-of-range values to a usage error here; the harness enforces
  // the same contracts with OTSCHED_CHECK (abort), which is the wrong
  // failure mode for a typo on the command line.
  if (options.seeds < 1 || options.max_jobs < 1 ||
      options.max_job_nodes < 1 || options.alpha < 2 ||
      options.max_shrink_evals < 0) {
    std::fprintf(stderr,
                 "%s: --seeds/--max-jobs/--max-nodes need >= 1, --alpha "
                 ">= 2, --shrink-evals >= 0\n",
                 argv[0]);
    return 2;
  }
  for (int m : options.machine_sizes) {
    if (m < 1) {
      std::fprintf(stderr, "%s: machine sizes must be positive, got %d\n",
                   argv[0], m);
      return 2;
    }
  }

  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in.good()) {
      std::fprintf(stderr, "cannot open repro file %s\n",
                   replay_path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const otsched::FuzzReport report =
        otsched::ReplayRepro(text.str(), options);
    if (report.ok()) {
      std::printf("replay of %s: violation no longer reproduces (%lld "
                  "oracle checks)\n",
                  replay_path.c_str(),
                  static_cast<long long>(report.oracle_checks));
      return 0;
    }
    std::fputs(report.summary().c_str(), stdout);
    return 1;
  }

  const otsched::FuzzReport report = otsched::RunDifferentialFuzz(options);
  std::fputs(report.summary().c_str(), stdout);
  return report.ok() ? 0 : 1;
}
