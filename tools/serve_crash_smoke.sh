#!/usr/bin/env bash
# Crash-recovery gate for `otsched serve` (docs/SERVING.md): SIGKILL a
# journaled daemon mid-stream, --recover, resume the stream, and assert
# the reply set AND the /metrics document are identical to an
# uninterrupted run's (modulo durability counters —
# tools/diff_serve_metrics.py encodes that "modulo").
#
# Usage: serve_crash_smoke.sh <otsched-binary> <workdir>
set -euo pipefail

BIN=$(readlink -f "$1")
WORK=$2
TOOLS=$(dirname "$(readlink -f "$0")")
mkdir -p "$WORK"
cd "$WORK"

# Spaced releases (job k at slot 8k, 5 nodes spanning 3 slots on m=2):
# the daemon is never behind a release, so clamping cannot occur and
# the stream is deterministic regardless of TCP batching.
python3 - <<'EOF' > stream.jsonl
for k in range(40):
    print('{"id": "job-%04d", "release": %d, "nodes": 5,'
          ' "edges": [[0,1],[0,2],[1,3],[2,4]]}' % (k, k * 8))
EOF
head -20 stream.jsonl > first.jsonl
tail -20 stream.jsonl > second.jsonl

start_daemon() {  # extra serve flags in "$@"; sets DPID and PORT
  "$BIN" serve --listen 127.0.0.1:0 --m 2 --policy fifo/first-ready \
    "$@" > daemon.log 2>&1 &
  DPID=$!
  PORT=""
  for _ in $(seq 100); do
    PORT=$(awk '/^listening on /{sub(/.*:/, "", $3); print $3; exit}' \
           daemon.log 2>/dev/null)
    [ -n "$PORT" ] && return 0
    sleep 0.1
  done
  echo "daemon never printed its port:" >&2
  cat daemon.log >&2
  return 1
}

drive() {  # $1 = stream file, $2 = append-to reply file
  python3 - "$PORT" "$1" "$2" <<'EOF'
import socket, sys
port, stream, out = int(sys.argv[1]), sys.argv[2], sys.argv[3]
s = socket.create_connection(("127.0.0.1", port))
lines = open(stream).read()
s.sendall(lines.encode())
want = lines.count("\n")
buf = b""
while buf.count(b"\n") < want:
    chunk = s.recv(65536)
    if not chunk:
        sys.exit("connection closed %d replies short" %
                 (want - buf.count(b"\n")))
    buf += chunk
open(out, "ab").write(buf)
s.close()
EOF
}

# Reference: the uninterrupted run.
start_daemon
drive stream.jsonl ref.out
curl -fsS "http://127.0.0.1:$PORT/metrics" > ref.metrics.json
kill -TERM "$DPID"; wait "$DPID"

# Crash run: journal, stream half, SIGKILL, recover, stream the rest.
start_daemon --journal wal.ndjson
drive first.jsonl crash.out
kill -KILL "$DPID"; wait "$DPID" 2>/dev/null || true
start_daemon --journal wal.ndjson --recover wal.ndjson
grep '^recovered ' daemon.log
# Client contract after a crash: resubmit every unacknowledged tag
# (the daemon answers from parked replies / adopted jobs, never twice).
python3 - <<'EOF'
import json
acked = {json.loads(line)["id"] for line in open("crash.out")}
unacked = [l for l in open("first.jsonl") if json.loads(l)["id"] not in acked]
open("resub.jsonl", "w").writelines(unacked)
print("resubmitting", len(unacked), "unacknowledged tags")
EOF
if [ -s resub.jsonl ]; then drive resub.jsonl crash.out; fi
drive second.jsonl crash.out
curl -fsS "http://127.0.0.1:$PORT/metrics" > crash.metrics.json
kill -TERM "$DPID"; wait "$DPID"

# The gate: identical reply sets, schema-valid captures, and /metrics
# convergence modulo durability counters.
sort ref.out > ref.sorted
sort crash.out > crash.sorted
diff ref.sorted crash.sorted
python3 "$TOOLS/check_metrics_schema.py" ref.metrics.json crash.metrics.json
python3 "$TOOLS/diff_serve_metrics.py" crash.metrics.json ref.metrics.json
echo "serve crash smoke: PASS ($(wc -l < ref.out) replies converge)"
